"""Incremental-session behaviour: fallbacks, journal edge cases, counters."""

from __future__ import annotations

import pytest

from repro import Graph, MatchSession, parse_keys
from repro.core.chase import candidate_pairs, chase
from repro.datasets.synthetic import synthetic_dataset

ALBUM_KEYS = """
key album_by_name_and_year for album:
  x -[name_of]-> name*
  x -[release_year]-> year*
"""


def album_graph() -> Graph:
    graph = Graph()
    for eid in ("alb1", "alb2", "alb3"):
        graph.add_entity(eid, "album")
    graph.add_value("alb1", "name_of", "Anthology 2")
    graph.add_value("alb2", "name_of", "Anthology 2")
    graph.add_value("alb3", "name_of", "Abbey Road")
    graph.add_value("alb1", "release_year", "1996")
    return graph


def primed_session(graph: Graph) -> MatchSession:
    session = MatchSession(graph).with_keys(parse_keys(ALBUM_KEYS)).using("chase")
    session.run()
    return session


class TestFallbacks:
    def test_first_incremental_run_falls_back_to_full(self):
        graph = album_graph()
        session = MatchSession(graph).with_keys(parse_keys(ALBUM_KEYS))
        result = session.run("chase", incremental=True)
        assert result.pairs() == chase(graph, parse_keys(ALBUM_KEYS)).pairs()
        delta = session.last_delta()
        assert delta is not None and delta.mode == "full"
        assert "no previous result" in delta.reason
        assert session.cache_info().incremental_runs == 0

    def test_window_overflow_falls_back_silently(self, monkeypatch):
        monkeypatch.setattr(Graph, "MUTATION_LOG_LIMIT", 4)
        graph = album_graph()
        session = primed_session(graph)
        # enough mutations to slide the journal window past the seed version
        for index in range(4):
            graph.add_value("alb3", f"tag_{index}", f"v{index}")
        graph.add_value("alb2", "release_year", "1996")
        assert graph.touched_since(session._incremental.version) is None
        result = session.rerun()
        assert result.identified("alb1", "alb2")
        delta = session.last_delta()
        assert delta.mode == "full" and "journal window expired" in delta.reason
        assert session.cache_info().incremental_runs == 0  # not incremented

    def test_invalidate_severs_the_delta_chain(self):
        graph = album_graph()
        session = primed_session(graph)
        graph.add_value("alb2", "release_year", "1996")
        session.rerun()
        info = session.cache_info()
        assert info.incremental_runs == 1
        assert info.pairs_rechecked + info.pairs_skipped > 0
        session.invalidate()
        info = session.cache_info()
        # the new counters reset alongside the artifact drop
        assert info.incremental_runs == 0
        assert info.pairs_rechecked == 0 and info.pairs_skipped == 0
        assert session.last_delta() is None
        graph.add_value("alb3", "release_year", "1969")
        session.rerun()
        assert session.last_delta().mode == "full"

    def test_with_keys_keeps_the_seed_when_keys_are_equal(self):
        # re-passing an equal key set is a no-op delta: the seed state (and
        # every cached artifact) survives, so the rerun reuses the result
        graph = album_graph()
        session = primed_session(graph)
        session.with_keys(parse_keys(ALBUM_KEYS))
        session.rerun()
        assert session.last_delta().mode == "reused"
        assert session.cache_info().key_rebases == 0

    def test_with_keys_drops_the_seed_state_on_a_real_delta(self):
        graph = album_graph()
        session = primed_session(graph)
        changed = ALBUM_KEYS.replace("release_year]-> year*", "name_of]-> name*")
        session.with_keys(parse_keys(changed))
        result = session.rerun()
        assert session.last_delta().mode == "full"
        assert result.pairs() == chase(graph, parse_keys(changed)).pairs()
        assert session.cache_info().key_rebases == 1


class TestJournalEdgeCases:
    def test_mutation_touching_zero_candidate_pairs_reuses_result(self):
        graph = album_graph()
        session = primed_session(graph)
        first = session.rematch()
        graph.add_entity("venue1", "venue")  # unkeyed type, isolated node
        second = session.rerun()
        assert second is first  # the previous result object, returned as-is
        delta = session.last_delta()
        assert delta.mode == "reused"
        assert delta.pairs_rechecked == 0
        assert session.cache_info().incremental_runs == 1

    def test_no_mutation_at_all_reuses_result(self):
        graph = album_graph()
        session = primed_session(graph)
        first = session.rematch()
        second = session.rerun()
        assert second is first
        assert session.last_delta().mode == "reused"

    def test_back_to_back_mutations_between_runs(self):
        graph = album_graph()
        session = primed_session(graph)
        seed_version = session._incremental.version
        graph.add_value("alb2", "release_year", "1996")
        graph.add_value("alb3", "release_year", "1969")
        graph.add_entity("alb4", "album")
        graph.add_value("alb4", "name_of", "Abbey Road")
        graph.add_value("alb4", "release_year", "1969")
        assert graph.version > seed_version + 1  # versions skip forward
        result = session.rerun()
        keys = parse_keys(ALBUM_KEYS)
        assert result.eq.pairs() == chase(graph, keys).pairs()
        assert result.identified("alb1", "alb2")
        assert result.identified("alb3", "alb4")
        assert session.last_delta().mode == "incremental"

    def test_removal_retracts_previous_identification(self):
        graph = album_graph()
        graph.add_value("alb2", "release_year", "1996")
        session = primed_session(graph)
        assert session.rematch().identified("alb1", "alb2")
        graph.remove_value("alb2", "release_year", "1996")
        result = session.rerun()
        assert not result.identified("alb1", "alb2")
        assert result.eq.pairs() == chase(graph, parse_keys(ALBUM_KEYS)).pairs()

    def test_retype_drops_pairs_without_a_backend_run(self):
        graph = album_graph()
        graph.add_value("alb2", "release_year", "1996")
        session = primed_session(graph)
        assert session.rematch().identified("alb1", "alb2")
        graph.retype_entity("alb2", "bootleg")
        result = session.rerun()
        assert not result.identified("alb1", "alb2")
        assert result.eq.pairs() == chase(graph, parse_keys(ALBUM_KEYS)).pairs()


class TestCounterInvariants:
    def test_rechecked_plus_skipped_equals_candidates_each_run(self):
        dataset = synthetic_dataset(
            num_keys=4, chain_length=2, radius=2, entities_per_type=4, seed=3
        )
        graph, keys = dataset.graph, dataset.keys
        session = MatchSession(graph).with_keys(keys).using("EMOptMR")
        session.run()
        mutations = [
            lambda: graph.add_value("e0_1_0", "extra_tag", "x"),
            lambda: graph.add_entity("fuzz_e", graph.entity_type("e0_1_0")),
            lambda: graph.add_value("fuzz_e", "name_of", "name_0_1_0"),
        ]
        previous = session.cache_info()
        for mutate in mutations:
            mutate()
            session.rerun()
            info = session.cache_info()
            rechecked = info.pairs_rechecked - previous.pairs_rechecked
            skipped = info.pairs_skipped - previous.pairs_skipped
            assert rechecked + skipped == len(candidate_pairs(graph, keys))
            assert rechecked == session.last_delta().pairs_rechecked
            previous = info
        assert session.cache_info().incremental_runs == len(mutations)

    def test_incremental_run_reuses_artifacts_via_rebase(self):
        dataset = synthetic_dataset(
            num_keys=4, chain_length=2, radius=2, entities_per_type=4, seed=3
        )
        graph, keys = dataset.graph, dataset.keys
        session = MatchSession(graph).with_keys(keys).using("EMOptVC")
        session.run()
        built = session.cache_info()
        graph.add_value("e0_1_0", "extra_tag", "x")
        session.rerun()
        info = session.cache_info()
        # the filtered candidates and the product graph were rebased, not rebuilt
        assert info.candidate_rebases >= 1
        assert info.product_graph_rebases == 1
        assert info.product_graph_builds == built.product_graph_builds
        assert info.neighborhood_index_builds == built.neighborhood_index_builds

    def test_every_backend_reports_consistent_counters(self):
        graph = album_graph()
        keys = parse_keys(ALBUM_KEYS)
        for backend in ("chase", "EMMR", "EMVF2MR", "EMOptMR", "EMVC", "EMOptVC"):
            session = MatchSession(graph.copy()).with_keys(keys).using(backend)
            session.run()
            session.graph.add_value("alb2", "release_year", "1996")
            result = session.rerun()
            assert result.identified("alb1", "alb2"), backend
            delta = session.last_delta()
            assert delta.mode == "incremental", backend
            info = session.cache_info()
            assert info.incremental_runs == 1, backend
            assert (
                delta.pairs_rechecked + delta.pairs_skipped
                == len(candidate_pairs(session.graph, keys))
            ), backend


class TestConfigSurface:
    def test_incremental_flag_via_config_default(self):
        graph = album_graph()
        session = MatchSession(graph).with_keys(parse_keys(ALBUM_KEYS))
        session.using("chase", incremental=True)
        assert session.config.incremental
        session.run()  # fallback full (no previous result)
        assert session.last_delta().mode == "full"
        graph.add_value("alb2", "release_year", "1996")
        result = session.run()  # config default: incremental
        assert result.identified("alb1", "alb2")
        assert session.last_delta().mode == "incremental"

    def test_incremental_flag_validated(self):
        from repro import MatchConfig
        from repro.exceptions import ConfigError

        with pytest.raises(ConfigError, match="incremental"):
            MatchConfig(incremental="yes")

    def test_describe_mentions_incremental(self):
        from repro import MatchConfig

        assert "incremental" in MatchConfig(incremental=True).describe()
        assert "incremental" not in MatchConfig().describe()

    def test_history_and_result_equivalence_of_rerun_and_rematch(self):
        graph = album_graph()
        session = primed_session(graph)
        graph.add_value("alb2", "release_year", "1996")
        incremental = session.rerun()
        full = session.rematch()
        assert incremental.eq.pairs() == full.eq.pairs()
        assert len(session.history) == 3


class TestReuseGuards:
    def test_no_op_delta_does_not_leak_results_across_algorithms(self):
        graph = album_graph()
        session = MatchSession(graph).with_keys(parse_keys(ALBUM_KEYS))
        session.run("EMMR", incremental=True)  # fallback full, records seed
        result = session.run("EMVC", incremental=True)  # no mutation since
        # same fixpoint, but the result must carry THIS run's identity
        assert result.algorithm == "EMVC"
        assert session.last_delta().mode == "incremental"
        again = session.run("EMVC", incremental=True)
        assert again is result  # now the config matches: object reuse kicks in
        assert session.last_delta().mode == "reused"

    def test_option_change_disables_reuse(self):
        graph = album_graph()
        session = MatchSession(graph).with_keys(parse_keys(ALBUM_KEYS))
        first = session.run("EMOptVC", incremental=True, fanout=2)
        second = session.run("EMOptVC", incremental=True, fanout=3)
        assert second is not first
        assert second.algorithm == "EMOptVC"
        assert second.eq.pairs() == first.eq.pairs()

    def test_candidate_pairs_stat_normalized_across_backends(self):
        graph = album_graph()
        keys = parse_keys(ALBUM_KEYS)
        expected = len(candidate_pairs(graph, keys)) + 0  # |L| before mutation
        for backend in ("chase", "EMMR", "EMOptVC"):
            session = MatchSession(graph.copy()).with_keys(keys).using(backend)
            session.run()
            session.graph.add_value("alb2", "release_year", "1996")
            result = session.rerun()
            assert result.stats.candidate_pairs == len(
                candidate_pairs(session.graph, keys)
            ), backend

    def test_failed_run_clears_seed_and_provenance(self, monkeypatch):
        graph = album_graph()
        session = primed_session(graph)
        graph.add_value("alb2", "release_year", "1996")
        session.rerun()
        assert session.last_delta() is not None

        class Boom(RuntimeError):
            pass

        # a backend that dies mid-run (observers are isolated since the
        # notify() hardening, so the failure is injected below the session)
        def exploding(self, spec, config, validated, state):
            raise Boom(spec.name)

        monkeypatch.setattr(MatchSession, "_run_incremental", exploding)
        graph.add_value("alb3", "release_year", "1969")
        with pytest.raises(Boom):
            session.run("EMMR", incremental=True)  # dies mid-run
        monkeypatch.undo()
        # neither stale provenance nor a stale seed survives the failure
        assert session.last_delta() is None
        session.rerun()
        assert session.last_delta().mode == "full"
