"""Observer hardening and the bounded-queue EventStream channel."""

from __future__ import annotations

import threading

import pytest

from repro import MatchSession
from repro.api.events import EventStream, ProgressEvent, notify
from repro.datasets.music import EXPECTED_IDENTIFIED_PAIRS, music_dataset


def event(stage: str = "round", round: int = 0) -> ProgressEvent:
    return ProgressEvent(algorithm="test", stage=stage, round=round)


class TestNotifyHardening:
    def test_notify_swallows_observer_exceptions(self, caplog):
        def exploding(_event):
            raise RuntimeError("boom")

        with caplog.at_level("ERROR", logger="repro.events"):
            notify(exploding, event())  # must not raise
        assert any("event dropped" in record.message for record in caplog.records)

    def test_notify_none_observer_is_a_noop(self):
        notify(None, event())

    def test_raising_observer_does_not_abort_a_run(self):
        graph, keys = music_dataset()
        session = MatchSession(graph).with_keys(keys)

        def exploding(_event):
            raise RuntimeError("boom")

        session.on_progress(exploding)
        result = session.run("EMOptVC")
        assert result.pairs() == set(EXPECTED_IDENTIFIED_PAIRS)
        assert session.observer_errors
        observer, error = session.observer_errors[0]
        assert observer is exploding and isinstance(error, RuntimeError)

    def test_raising_observer_does_not_starve_its_siblings(self):
        graph, keys = music_dataset()
        session = MatchSession(graph).with_keys(keys)
        seen = []

        def exploding(_event):
            raise RuntimeError("boom")

        session.on_progress(exploding)
        session.on_progress(seen.append)  # registered *after* the bad one
        session.run("EMMR")
        stages = [e.stage for e in seen]
        assert "done" in stages  # the sibling received the full stream
        assert len(session.observer_errors) == len(seen)

    def test_observer_error_log_is_bounded(self):
        graph, keys = music_dataset()
        session = MatchSession(graph).with_keys(keys)

        def exploding(_event):
            raise RuntimeError("boom")

        session.on_progress(exploding)
        for _ in range(20):
            session.run("EMOptVC")
        assert len(session.observer_errors) <= session._MAX_OBSERVER_ERRORS


class TestEventStream:
    def test_iteration_yields_until_closed(self):
        stream = EventStream()
        for i in range(3):
            stream(event(round=i))
        stream.close()
        assert [e.round for e in stream] == [0, 1, 2]

    def test_bounded_queue_drops_oldest(self):
        stream = EventStream(maxsize=4)
        for i in range(10):
            stream(event(round=i))
        assert stream.dropped == 6  # events 0-5 evicted, newest survive
        stream.close()  # the close sentinel evicts one more on a full queue
        rounds = [e.round for e in stream]
        assert rounds == [7, 8, 9]
        assert stream.dropped == 7
        assert stream.received == 10

    def test_events_after_close_are_ignored(self):
        stream = EventStream()
        stream(event(round=1))
        stream.close()
        stream(event(round=2))
        assert [e.round for e in stream] == [1]

    def test_drain_is_nonblocking(self):
        stream = EventStream()
        assert stream.drain() == []
        stream(event(round=7))
        drained = stream.drain()
        assert [e.round for e in drained] == [7]

    def test_get_timeout_returns_none(self):
        stream = EventStream()
        assert stream.get(timeout=0.01) is None

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            EventStream(maxsize=0)

    def test_session_events_receive_a_run(self):
        graph, keys = music_dataset()
        session = MatchSession(graph).with_keys(keys)
        with session.events() as stream:
            session.run("EMOptVC")
            events = stream.drain()
        assert events and events[-1].stage == "done"
        # closing detached the stream from the session
        assert stream not in session._observers
        session.run("EMOptVC")
        assert stream.drain() == []

    def test_every_backend_emits_a_done_event(self):
        graph, keys = music_dataset()
        session = MatchSession(graph).with_keys(keys)
        from repro import ALGORITHMS

        for name in ALGORITHMS:
            stream = session.events()
            session.run(name)
            stages = [e.stage for e in stream.drain()]
            stream.close()
            assert stages and stages[-1] == "done", name

    def test_concurrent_producers_never_block(self):
        stream = EventStream(maxsize=8)
        threads = [
            threading.Thread(target=lambda: [stream(event(round=i)) for i in range(100)])
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not any(thread.is_alive() for thread in threads)
        assert stream.received == 400
        assert stream.pending <= 8
