"""Tests of the algorithm registry (registration, lookup, live view)."""

from __future__ import annotations

import pytest

import repro
from repro.api.registry import (
    ALGORITHMS,
    REGISTRY,
    AlgorithmRegistry,
    AlgorithmSpec,
    OptionSpec,
    algorithm_specs,
    get_algorithm,
    register_algorithm,
)
from repro.datasets.music import music_dataset
from repro.exceptions import ConfigError, MatchingError

PAPER_ALGORITHMS = {"chase", "EMMR", "EMVF2MR", "EMOptMR", "EMVC", "EMOptVC"}


class TestBuiltinRegistrations:
    def test_all_six_paper_algorithms_registered(self):
        assert set(ALGORITHMS) == PAPER_ALGORITHMS

    def test_families(self):
        families = {spec.name: spec.family for spec in algorithm_specs()}
        assert families["chase"] == "sequential"
        assert families["EMMR"] == families["EMVF2MR"] == families["EMOptMR"] == "mapreduce"
        assert families["EMVC"] == families["EMOptVC"] == "vertex-centric"

    def test_emoptvc_declares_fanout(self):
        spec = get_algorithm("EMOptVC")
        assert "fanout" in spec.option_names()
        assert spec.option("fanout").default == 4

    def test_lookup_is_case_insensitive(self):
        assert get_algorithm("emoptvc").name == "EMOptVC"
        assert get_algorithm("CHASE").name == "chase"

    def test_unknown_name_raises_matching_error(self):
        with pytest.raises(MatchingError, match="unknown algorithm"):
            get_algorithm("EMDoesNotExist")


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(MatchingError, match="already registered"):
            register_algorithm("EMMR", family="test")(lambda g, k, **kw: None)

    def test_duplicate_name_rejected_case_insensitively(self):
        with pytest.raises(MatchingError, match="already registered"):
            register_algorithm("emmr", family="test")(lambda g, k, **kw: None)

    def test_register_and_unregister_through_live_view(self):
        def runner(graph, keys, *, processors=4, artifacts=None, observer=None):
            return repro.matching.chase_as_result(graph, keys)

        register_algorithm("TestChase", family="test")(runner)
        try:
            assert "TestChase" in list(ALGORITHMS)
            assert "TestChase" in list(repro.ALGORITHMS)  # same live view
            graph, keys = music_dataset()
            result = repro.match_entities(graph, keys, algorithm="TestChase")
            assert result.pairs() == repro.match_entities(graph, keys, algorithm="chase").pairs()
        finally:
            REGISTRY.unregister("TestChase")
        assert "TestChase" not in list(ALGORITHMS)

    def test_unregister_unknown_raises(self):
        with pytest.raises(MatchingError):
            REGISTRY.unregister("NeverRegistered")

    def test_isolated_registry_does_not_touch_global(self):
        local = AlgorithmRegistry()
        register_algorithm("Local", family="test", registry=local)(lambda g, k, **kw: None)
        assert "Local" in local and "Local" not in REGISTRY


class TestOptionValidation:
    def test_unknown_option_rejected_with_accepted_list(self):
        spec = get_algorithm("EMOptVC")
        with pytest.raises(ConfigError, match="fanout"):
            spec.validate_options({"bogus": 1})

    def test_int_option_rejects_bool_and_str(self):
        option = OptionSpec("fanout", int, 4)
        assert option.validate(2) == 2
        with pytest.raises(ConfigError):
            option.validate(True)
        with pytest.raises(ConfigError):
            option.validate("four")

    def test_float_option_coerces_int(self):
        assert OptionSpec("ratio", float, 0.5).validate(1) == 1.0


def test_algorithms_view_is_a_sequence():
    assert len(ALGORITHMS) == len(list(ALGORITHMS))
    assert ALGORITHMS[0] in PAPER_ALGORITHMS
    assert "EMVC" in ALGORITHMS
