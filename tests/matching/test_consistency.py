"""Cross-algorithm consistency: every algorithm must compute the same chase.

This is the central correctness test of the reproduction: the sequential
chase, the three MapReduce variants and the two vertex-centric variants must
agree on every dataset, and where the dataset plants known duplicates they
must find exactly the planted pairs.
"""

from __future__ import annotations

import pytest

from repro.datasets.circuits import (
    deep_and_chain,
    encode_circuit,
    expected_identified_pairs,
    random_monotone_circuit,
)
from repro.matching import ALGORITHMS, match_entities

PARALLEL_ALGORITHMS = [name for name in ALGORITHMS if name != "chase"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
class TestPaperExamples:
    def test_music(self, music, algorithm):
        graph, keys, expected = music
        result = match_entities(graph, keys, algorithm=algorithm)
        assert result.pairs() == expected

    def test_business(self, business, algorithm):
        graph, keys, expected = business
        result = match_entities(graph, keys, algorithm=algorithm)
        assert result.pairs() == expected

    def test_address(self, address, algorithm):
        graph, keys, expected = address
        result = match_entities(graph, keys, algorithm=algorithm)
        assert result.pairs() == expected

    def test_fusion_example(self, fusion_example, algorithm):
        graph, keys, expected = fusion_example
        result = match_entities(graph, keys, algorithm=algorithm)
        assert result.pairs() == expected


@pytest.mark.parametrize("algorithm", PARALLEL_ALGORITHMS)
class TestGeneratedWorkloads:
    def test_small_synthetic_finds_planted_pairs(self, small_synthetic, algorithm):
        result = match_entities(small_synthetic.graph, small_synthetic.keys, algorithm=algorithm)
        assert result.pairs() == small_synthetic.planted_pairs

    def test_deep_synthetic_chain(self, deep_synthetic, algorithm):
        result = match_entities(deep_synthetic.graph, deep_synthetic.keys, algorithm=algorithm)
        assert result.pairs() == deep_synthetic.planted_pairs

    def test_social(self, small_social, algorithm):
        result = match_entities(small_social.graph, small_social.keys, algorithm=algorithm)
        assert result.pairs() == small_social.planted_pairs

    def test_knowledge(self, small_knowledge, algorithm):
        result = match_entities(small_knowledge.graph, small_knowledge.keys, algorithm=algorithm)
        assert result.pairs() == small_knowledge.planted_pairs


@pytest.mark.parametrize("algorithm", PARALLEL_ALGORITHMS)
class TestCircuitReduction:
    def test_deep_and_chain(self, algorithm):
        circuit = deep_and_chain(depth=4)
        graph, keys = encode_circuit(circuit)
        result = match_entities(graph, keys, algorithm=algorithm)
        assert result.pairs() == expected_identified_pairs(circuit)

    @pytest.mark.parametrize("seed", [1, 2])
    def test_random_circuits(self, algorithm, seed):
        circuit = random_monotone_circuit(num_inputs=3, num_gates=5, seed=seed)
        graph, keys = encode_circuit(circuit)
        result = match_entities(graph, keys, algorithm=algorithm)
        assert result.pairs() == expected_identified_pairs(circuit)


@pytest.mark.parametrize("processors", [1, 2, 8])
def test_result_is_independent_of_processor_count(music, processors):
    graph, keys, expected = music
    for algorithm in PARALLEL_ALGORITHMS:
        result = match_entities(graph, keys, algorithm=algorithm, processors=processors)
        assert result.pairs() == expected, algorithm


def test_unknown_algorithm_rejected(music):
    graph, keys, _ = music
    from repro.exceptions import MatchingError

    with pytest.raises(MatchingError):
        match_entities(graph, keys, algorithm="EMDoesNotExist")


def test_algorithm_names_are_case_insensitive(music):
    graph, keys, expected = music
    result = match_entities(graph, keys, algorithm="emoptvc")
    assert result.pairs() == expected
