"""Tests specific to the vertex-centric algorithms (EMVC, EMOptVC)."""

from __future__ import annotations

import pytest

from repro.matching import em_mr, em_vc, em_vc_opt
from repro.matching.em_vc import OptimizedVertexCentricEntityMatcher
from repro.datasets.synthetic import synthetic_dataset


class TestEMVCBehaviour:
    def test_no_mapreduce_rounds(self, music):
        graph, keys, _ = music
        result = em_vc(graph, keys)
        assert result.stats.rounds == 0
        assert result.stats.messages_sent > 0
        assert result.stats.messages_processed > 0

    def test_product_graph_statistics(self, music):
        graph, keys, _ = music
        result = em_vc(graph, keys)
        assert result.stats.product_graph_nodes > 0
        assert result.stats.product_graph_edges >= 0

    def test_faster_than_mapreduce_in_simulated_time(self, music):
        """The headline claim of Section 5: EMVC avoids MapReduce's inherent costs."""
        graph, keys, _ = music
        mapreduce_time = em_mr(graph, keys, processors=4).simulated_seconds
        vertex_time = em_vc(graph, keys, processors=4).simulated_seconds
        assert vertex_time < mapreduce_time

    def test_more_processors_do_not_increase_time(self):
        dataset = synthetic_dataset(num_keys=8, chain_length=2, radius=2, entities_per_type=6)
        slow = em_vc(dataset.graph, dataset.keys, processors=4).simulated_seconds
        fast = em_vc(dataset.graph, dataset.keys, processors=20).simulated_seconds
        assert fast <= slow

    def test_early_cancellation_counter_exposed(self, music):
        graph, keys, _ = music
        result = em_vc(graph, keys)
        assert "early_cancelled" in result.cost_breakdown
        assert "dep_notifications" in result.cost_breakdown


class TestEMOptVC:
    def test_same_result_as_unoptimized(self, music, business, small_synthetic):
        cases = [music[:2], business[:2], (small_synthetic.graph, small_synthetic.keys)]
        for graph, keys in cases:
            assert em_vc_opt(graph, keys).pairs() == em_vc(graph, keys).pairs()

    @pytest.mark.parametrize("fanout", [1, 2, 8])
    def test_any_fanout_budget_is_complete(self, small_synthetic, fanout):
        result = em_vc_opt(
            small_synthetic.graph, small_synthetic.keys, processors=4, fanout=fanout
        )
        assert result.pairs() == small_synthetic.planted_pairs

    def test_invalid_fanout_rejected(self, music):
        graph, keys, _ = music
        matcher = OptimizedVertexCentricEntityMatcher(graph, keys, fanout=0)
        with pytest.raises(ValueError):
            matcher.run()

    def test_bounded_messages_reduce_work_on_larger_workloads(self):
        dataset = synthetic_dataset(
            num_keys=10, chain_length=2, radius=2, entities_per_type=8, duplicate_fraction=0.3
        )
        base = em_vc(dataset.graph, dataset.keys, processors=4)
        optimized = em_vc_opt(dataset.graph, dataset.keys, processors=4)
        assert optimized.pairs() == base.pairs() == dataset.planted_pairs
        # the optimized variant never does *more* guided work; messages may tie
        # on tiny inputs but must not blow up
        assert optimized.stats.messages_processed <= base.stats.messages_processed * 1.5
