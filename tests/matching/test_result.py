"""Tests of the EMResult / EMStatistics containers."""

from __future__ import annotations

from repro.core.equivalence import EquivalenceRelation
from repro.matching import chase_as_result, match_entities
from repro.matching.result import EMResult, EMStatistics


class TestEMResult:
    def test_pairs_and_identified(self):
        eq = EquivalenceRelation()
        eq.merge("a", "b")
        result = EMResult(algorithm="test", processors=2, eq=eq)
        assert result.pairs() == {("a", "b")}
        assert result.identified("a", "b")
        assert not result.identified("a", "c")
        assert result.num_identified == 1

    def test_summary_flattens_statistics(self):
        eq = EquivalenceRelation()
        stats = EMStatistics(candidate_pairs=10, rounds=3)
        result = EMResult(
            algorithm="EMMR", processors=4, eq=eq, simulated_seconds=1.234, stats=stats
        )
        summary = result.summary()
        assert summary["algorithm"] == "EMMR"
        assert summary["candidate_pairs"] == 10
        assert summary["rounds"] == 3
        assert summary["simulated_seconds"] == 1.234

    def test_stats_as_dict_round_trip(self):
        stats = EMStatistics(messages_sent=7)
        assert stats.as_dict()["messages_sent"] == 7


class TestChaseAsResult:
    def test_wraps_sequential_chase(self, music):
        graph, keys, expected = music
        result = chase_as_result(graph, keys)
        assert result.algorithm == "chase"
        assert result.pairs() == expected
        assert result.stats.identified_pairs == len(expected)
        assert result.stats.checks > 0

    def test_matches_dispatcher(self, music):
        graph, keys, _ = music
        assert (
            match_entities(graph, keys, algorithm="chase").pairs()
            == chase_as_result(graph, keys).pairs()
        )
