"""Tests specific to the MapReduce algorithms (EMMR, EMVF2MR, EMOptMR)."""

from __future__ import annotations

import pytest

from repro.matching import em_mr, em_mr_opt, em_vf2_mr
from repro.matching.checkers import EnumerationChecker, GuidedChecker
from repro.core.equivalence import EquivalenceRelation
from repro.datasets.music import key_q2, music_graph
from repro.datasets.synthetic import synthetic_dataset


class TestCheckers:
    def test_guided_checker_reports_work(self):
        graph = music_graph()
        checker = GuidedChecker(graph)
        identified, work = checker.check(
            [key_q2()], "alb1", "alb2", EquivalenceRelation(), None, None
        )
        assert identified and work >= 1

    def test_enumeration_checker_agrees_with_guided(self):
        graph = music_graph()
        guided = GuidedChecker(graph)
        enumerated = EnumerationChecker(graph)
        eq = EquivalenceRelation()
        for pair in (("alb1", "alb2"), ("alb1", "alb3")):
            left, _ = guided.check([key_q2()], *pair, eq, None, None)
            right, _ = enumerated.check([key_q2()], *pair, eq, None, None)
            assert left == right


class TestEMMRBehaviour:
    def test_round_count_matches_example8(self, music):
        """Example 8: EMMR takes three rounds on (G1, Σ1)."""
        graph, keys, _ = music
        result = em_mr(graph, keys, processors=4)
        assert result.stats.rounds == 3

    def test_rounds_grow_with_dependency_chain(self):
        shallow = synthetic_dataset(num_keys=4, chain_length=1, radius=1, entities_per_type=4)
        deep = synthetic_dataset(num_keys=4, chain_length=4, radius=1, entities_per_type=4)
        shallow_rounds = em_mr(shallow.graph, shallow.keys).stats.rounds
        deep_rounds = em_mr(deep.graph, deep.keys).stats.rounds
        assert deep_rounds > shallow_rounds

    def test_statistics_populated(self, music):
        graph, keys, _ = music
        result = em_mr(graph, keys, processors=4)
        stats = result.stats
        assert stats.candidate_pairs == 6
        assert stats.checks > 0
        assert stats.shuffled_records > 0
        assert stats.identified_pairs == 2
        assert result.cost_breakdown["total_seconds"] == pytest.approx(
            result.simulated_seconds
        )

    def test_more_processors_reduce_simulated_time(self):
        dataset = synthetic_dataset(num_keys=8, chain_length=2, radius=2, entities_per_type=6)
        slow = em_mr(dataset.graph, dataset.keys, processors=4).simulated_seconds
        fast = em_mr(dataset.graph, dataset.keys, processors=20).simulated_seconds
        assert fast < slow

    def test_vf2_baseline_charges_at_least_as_much_work(self, music):
        graph, keys, _ = music
        guided = em_mr(graph, keys, processors=4)
        baseline = em_vf2_mr(graph, keys, processors=4)
        assert baseline.pairs() == guided.pairs()
        assert baseline.stats.work_units >= guided.stats.work_units


class TestEMOptMR:
    def test_opt_does_not_change_the_result(self, music, business):
        for graph, keys, expected in (music, business):
            assert em_mr_opt(graph, keys).pairs() == expected

    def test_opt_reduces_checks_on_synthetic_data(self):
        dataset = synthetic_dataset(num_keys=8, chain_length=3, radius=2, entities_per_type=6)
        base = em_mr(dataset.graph, dataset.keys, processors=4)
        optimized = em_mr_opt(dataset.graph, dataset.keys, processors=4)
        assert optimized.pairs() == base.pairs() == dataset.planted_pairs
        assert optimized.stats.checks <= base.stats.checks
        assert optimized.stats.processed_pairs <= base.stats.processed_pairs

    def test_opt_is_not_slower_in_simulated_time(self):
        dataset = synthetic_dataset(num_keys=8, chain_length=3, radius=2, entities_per_type=6)
        base = em_mr(dataset.graph, dataset.keys, processors=4)
        optimized = em_mr_opt(dataset.graph, dataset.keys, processors=4)
        assert optimized.simulated_seconds <= base.simulated_seconds * 1.05
