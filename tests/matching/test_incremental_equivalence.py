"""Differential mutation-fuzz harness for incremental matching.

The one property that makes ``MatchSession.run(incremental=True)`` safe to
use: after *any* sequence of journalled mutations (edge additions and
removals, new and retyped entities, literal edits), the incremental result is
bit-identical to a from-scratch full run on the mutated graph — for every
registered backend, and under every executor.  The sequential chase on the
mutated graph is the ground truth (all backends equal it by Church–Rosser).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ALGORITHMS, MatchSession
from repro.core.chase import candidate_pairs, chase
from repro.core.graph import Graph
from repro.core.triples import Literal
from repro.datasets.synthetic import synthetic_dataset

BACKENDS = tuple(ALGORITHMS)


# --------------------------------------------------------------------------- #
# the mutation fuzzer
# --------------------------------------------------------------------------- #


def apply_random_mutation(graph: Graph, rng: random.Random) -> str:
    """Apply one random journalled mutation; returns a description (for notes)."""
    entities = sorted(graph.entity_ids())
    triples = sorted(graph.triples(), key=repr)
    types = sorted(graph.types())
    predicates = sorted(graph.predicates()) or ["name_of"]
    kind = rng.choice(
        ["add_edge", "remove_triple", "add_entity", "retype_entity", "edit_literal"]
    )

    if kind == "add_edge" and len(entities) >= 2:
        source, target = rng.sample(entities, 2)
        predicate = rng.choice(predicates)
        graph.add_edge(source, predicate, target)
        return f"add_edge({source}, {predicate}, {target})"

    if kind == "remove_triple" and triples:
        triple = rng.choice(triples)
        graph.remove_triple(triple)
        return f"remove_triple({triple})"

    if kind == "add_entity" and types:
        etype = rng.choice(types)
        eid = f"fuzz_{graph.num_entities}_{rng.randrange(1000)}"
        graph.add_entity(eid, etype)
        # give it values/edges that can coincide with an existing entity's
        twin = rng.choice(entities)
        for triple in graph.out_triples(twin).copy():
            if rng.random() < 0.7:
                graph.add_triple(triple._replace(subject=eid))
        return f"add_entity({eid}, {etype}) twinning {twin}"

    if kind == "retype_entity" and entities and types:
        eid = rng.choice(entities)
        graph.retype_entity(eid, rng.choice(types))
        return f"retype_entity({eid})"

    # literal edit: repoint one value triple at an existing or fresh value
    value_triples = [t for t in triples if t.object_is_value()]
    if value_triples:
        triple = rng.choice(value_triples)
        if rng.random() < 0.6:
            other = rng.choice(value_triples)
            new_value = other.obj
        else:
            new_value = Literal(f"fuzzed_{rng.randrange(1000)}")
        graph.set_value(triple.subject, triple.predicate, new_value)
        return f"edit_literal({triple.subject}, {triple.predicate})"

    # graph too small for the drawn mutation: fall back to a fresh entity
    graph.add_entity(f"fuzz_{graph.num_entities}", types[0] if types else "thing")
    return "add_entity(fallback)"


def fuzz_dataset(seed: int):
    return synthetic_dataset(
        num_keys=4, chain_length=2, radius=2, entities_per_type=3, seed=seed % 40
    )


def assert_incremental_matches_full(session: MatchSession, graph, keys) -> None:
    incremental = session.rerun()
    reference = chase(graph, keys)
    assert incremental.eq.pairs() == reference.pairs(), session.last_delta()
    delta = session.last_delta()
    if delta is not None and delta.mode in ("incremental", "reused"):
        assert delta.pairs_rechecked + delta.pairs_skipped == len(
            candidate_pairs(graph, keys)
        )


# --------------------------------------------------------------------------- #
# the differential property, per backend
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", BACKENDS)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    rounds=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=3),
)
@settings(max_examples=12, deadline=None)
def test_incremental_equals_full_under_random_mutations(backend, seed, rounds):
    """incremental Eq == from-scratch Eq after arbitrary mutation sequences."""
    dataset = fuzz_dataset(seed)
    graph, keys = dataset.graph, dataset.keys
    session = MatchSession(graph).with_keys(keys).using(backend)
    session.run()
    rng = random.Random(seed)
    for count in rounds:
        for _ in range(count):
            apply_random_mutation(graph, rng)
        assert_incremental_matches_full(session, graph, keys)


@given(seed=st.integers(min_value=0, max_value=100_000))
@settings(max_examples=10, deadline=None)
def test_incremental_chain_survives_interleaved_full_runs(seed):
    """Full and incremental runs interleave freely on one session."""
    dataset = fuzz_dataset(seed)
    graph, keys = dataset.graph, dataset.keys
    session = MatchSession(graph).with_keys(keys).using("chase")
    session.run()
    rng = random.Random(seed)
    for index in range(3):
        apply_random_mutation(graph, rng)
        if index % 2 == 0:
            assert_incremental_matches_full(session, graph, keys)
        else:
            full = session.rematch()
            assert full.eq.pairs() == chase(graph, keys).pairs()


# --------------------------------------------------------------------------- #
# executors: the same property on real worker pools
# --------------------------------------------------------------------------- #

EXECUTOR_BACKENDS = tuple(name for name in BACKENDS if name != "chase")


@pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
@pytest.mark.parametrize("executor", ["serial", "thread"])
def test_incremental_equals_full_on_executor_pools(backend, executor):
    dataset = fuzz_dataset(23)
    graph, keys = dataset.graph, dataset.keys
    session = (
        MatchSession(graph)
        .with_keys(keys)
        .using(backend, executor=executor, workers=2)
    )
    session.run()
    rng = random.Random(23)
    for _ in range(3):
        apply_random_mutation(graph, rng)
        assert_incremental_matches_full(session, graph, keys)


@pytest.mark.parametrize("backend", ["EMOptMR", "EMOptVC"])
def test_incremental_equals_full_on_process_pool(backend):
    dataset = fuzz_dataset(5)
    graph, keys = dataset.graph, dataset.keys
    session = (
        MatchSession(graph)
        .with_keys(keys)
        .using(backend, executor="process", workers=2)
    )
    session.run()
    rng = random.Random(5)
    apply_random_mutation(graph, rng)
    apply_random_mutation(graph, rng)
    assert_incremental_matches_full(session, graph, keys)


def test_incremental_identical_across_executors_after_delta():
    """One delta, every executor: all runs produce the same Eq."""
    dataset = fuzz_dataset(11)
    graph, keys = dataset.graph, dataset.keys
    sessions = {
        executor: MatchSession(graph).with_keys(keys).using(
            "EMOptMR", executor=executor, workers=2
        )
        for executor in ("serial", "thread", "process")
    }
    for session in sessions.values():
        session.run()
    rng = random.Random(11)
    apply_random_mutation(graph, rng)
    results = {name: session.rerun() for name, session in sessions.items()}
    reference = chase(graph, keys).pairs()
    for name, result in results.items():
        assert result.eq.pairs() == reference, name


# --------------------------------------------------------------------------- #
# rebased artifacts must equal from-scratch builds, bit for bit
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", ["EMOptMR", "EMOptVC"])
@given(seed=st.integers(min_value=0, max_value=100_000))
@settings(max_examples=10, deadline=None)
def test_rebased_artifacts_equal_fresh_builds(backend, seed):
    """Candidate sets, restrictions and dependency maps survive rebasing.

    Pairing supports are a joint simulation, so a mutation on one side of a
    pair can drift the *other* (unaffected) side's reduced neighbourhood —
    this differential gates that whole bug class, not just the fixpoint.
    """
    from repro.matching.candidates import (
        build_candidates,
        build_filtered_candidates,
        dependency_map,
    )

    dataset = fuzz_dataset(seed)
    graph, keys = dataset.graph, dataset.keys
    session = MatchSession(graph).with_keys(keys).using(backend)
    session.run()
    rng = random.Random(seed + 999)
    for _ in range(2):
        apply_random_mutation(graph, rng)
        session.rerun()
        arts = session._artifacts
        snapshot = arts.snapshot()
        for flavor, cached in arts._candidates.items():
            filtered, reduce_neighborhoods, blocked = flavor
            blocking = "auto" if blocked else "off"
            if filtered:
                fresh = build_filtered_candidates(
                    graph, keys,
                    reduce_neighborhoods=reduce_neighborhoods,
                    snapshot=snapshot,
                    blocking=blocking,
                )
                assert cached.pair_supports == fresh.pair_supports, flavor
                assert cached.rejected_pairs == fresh.rejected_pairs, flavor
            else:
                fresh = build_candidates(graph, keys, snapshot=snapshot, blocking=blocking)
            assert list(cached.pairs) == list(fresh.pairs), flavor
            for pair in cached.pairs:
                for entity in pair:
                    assert cached.neighborhoods.nodes(entity) == fresh.neighborhoods.nodes(entity), (
                        flavor, entity,
                    )
        for flavor, artifact in arts._dependency_maps.items():
            cached = arts._candidates[flavor]
            assert artifact.forward == dependency_map(snapshot, keys, cached), flavor
        for flavor, product_graph in arts._product_graphs.items():
            cached = arts._candidates[flavor]
            from repro.matching.product_graph import ProductGraph

            fresh_pg = ProductGraph(snapshot, keys, cached)
            assert product_graph._nodes == fresh_pg._nodes, flavor
            assert product_graph._dependents == fresh_pg._dependents, flavor
