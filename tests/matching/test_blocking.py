"""Unit tests for the signature blocking layer (sub-quadratic candidates).

Covers scheme compilation per key shape, certification and the force-mode
refusal, the subsequence/superset relationship between blocked and quadratic
candidate enumeration, incremental index rebasing, the snapshot value index
(``vindex``) that backs integer-space signature compilation, and the session
plumbing (flavor caching, counters, phase timers).
"""

from __future__ import annotations

import itertools

import pytest

from repro import MatchSession
from repro.core.chase import candidate_pairs, chase
from repro.core.graph import Graph
from repro.core.key import Key, KeySet
from repro.core.pattern import (
    GraphPattern,
    PatternTriple,
    constant,
    designated,
    entity_var,
    value_var,
)
from repro.core.triples import Literal
from repro.exceptions import ConfigError
from repro.matching.blocking import (
    BLOCKING_MODES,
    BlockingIndex,
    blocked_candidate_pairs,
    compile_blocking_scheme,
    compile_blocking_schemes,
    validate_blocking_mode,
)
from repro.storage import GraphSnapshot


# --------------------------------------------------------------------------- #
# fixtures: key shapes and matching graphs
# --------------------------------------------------------------------------- #


def flat_key() -> KeySet:
    """value-set shape: person identified by its name literal."""
    x = designated("x", "person")
    v = value_var("v")
    return KeySet([Key(GraphPattern([PatternTriple(x, "name", v)], name="Q"), name="pname")])


def recursive_key() -> KeySet:
    """neighbourhood-value shape: book identified via its author's name."""
    x = designated("x", "book")
    a = entity_var("a", "author")
    v = value_var("v")
    pattern = GraphPattern(
        [PatternTriple(x, "written_by", a), PatternTriple(a, "name", v)], name="Q"
    )
    return KeySet([Key(pattern, name="kbook")])


def constant_key() -> KeySet:
    """constant shape: only 'active' people with equal names are candidates."""
    x = designated("x", "person")
    v = value_var("v")
    c = constant("active", name="c")
    pattern = GraphPattern(
        [PatternTriple(x, "name", v), PatternTriple(x, "status", c)], name="Q"
    )
    return KeySet([Key(pattern, name="pactive")])


def uncertified_key() -> KeySet:
    """no value position at all: the scheme cannot be certified sound."""
    x = designated("x", "person")
    y = entity_var("y", "person")
    return KeySet(
        [Key(GraphPattern([PatternTriple(x, "friend", y)], name="Q"), name="pfriend")]
    )


def flat_graph(n: int = 9, collide: int = 3) -> Graph:
    graph = Graph()
    for i in range(n):
        graph.add_entity(f"p{i}", "person")
        graph.add_value(f"p{i}", "name", f"n{i % collide}")
        graph.add_value(f"p{i}", "status", "active" if i % 2 == 0 else "retired")
    return graph


def book_graph() -> Graph:
    graph = Graph()
    for i in range(6):
        graph.add_entity(f"b{i}", "book")
        graph.add_entity(f"a{i}", "author")
        graph.add_edge(f"b{i}", "written_by", f"a{i}")
        graph.add_value(f"a{i}", "name", f"auth{i % 2}")
    return graph


# --------------------------------------------------------------------------- #
# scheme compilation
# --------------------------------------------------------------------------- #


class TestSchemeCompilation:
    def test_flat_key_compiles_one_single_hop_path(self):
        scheme = compile_blocking_scheme(next(iter(flat_key())))
        assert scheme.certified
        assert scheme.target_type == "person"
        assert len(scheme.paths) == 1
        (path,) = scheme.paths
        assert len(path.steps) == 1
        assert path.steps[0].predicate == "name"
        assert path.steps[0].forward is True
        assert path.constant is None

    def test_recursive_key_compiles_a_two_hop_path(self):
        scheme = compile_blocking_scheme(next(iter(recursive_key())))
        assert scheme.certified
        (path,) = scheme.paths
        assert [s.predicate for s in path.steps] == ["written_by", "name"]
        assert path.steps[0].etype == "author"
        assert path.steps[1].etype is None  # literal endpoint

    def test_constant_node_becomes_a_filter_path(self):
        scheme = compile_blocking_scheme(next(iter(constant_key())))
        assert scheme.certified
        constants = [p.constant for p in scheme.paths if p.constant is not None]
        assert constants == [Literal("active")]

    def test_value_free_pattern_is_not_certified(self):
        scheme = compile_blocking_scheme(next(iter(uncertified_key())))
        assert not scheme.certified
        assert "value" in scheme.reason

    def test_schemes_follow_key_order(self):
        keys = KeySet(list(flat_key()) + list(recursive_key()))
        schemes = compile_blocking_schemes(keys)
        assert [s.key_name for s in schemes] == [k.name for k in keys]

    def test_validate_blocking_mode(self):
        for mode in BLOCKING_MODES:
            assert validate_blocking_mode(mode) == mode
        with pytest.raises(ConfigError):
            validate_blocking_mode("sometimes")


# --------------------------------------------------------------------------- #
# blocked enumeration vs. the quadratic baseline
# --------------------------------------------------------------------------- #


def assert_subsequence(blocked, quadratic):
    """blocked must be an order-preserving subsequence of the quadratic list."""
    iterator = iter(quadratic)
    for pair in blocked:
        for candidate in iterator:
            if candidate == pair:
                break
        else:
            pytest.fail(f"{pair} missing from (or out of order in) quadratic output")


class TestBlockedEnumeration:
    @pytest.mark.parametrize(
        "graph_factory, keys_factory",
        [(flat_graph, flat_key), (book_graph, recursive_key), (flat_graph, constant_key)],
    )
    def test_blocked_is_an_ordered_subset_of_quadratic(self, graph_factory, keys_factory):
        graph, keys = graph_factory(), keys_factory()
        quadratic = candidate_pairs(graph, keys)
        blocked, stats, _ = blocked_candidate_pairs(graph, keys, mode="auto")
        assert set(blocked) <= set(quadratic)
        assert_subsequence(blocked, quadratic)
        assert stats.enumerated_pairs == len(blocked)
        assert stats.quadratic_pairs == len(quadratic)
        assert stats.pairs_pruned == len(quadratic) - len(blocked)

    @pytest.mark.parametrize(
        "graph_factory, keys_factory",
        [(flat_graph, flat_key), (book_graph, recursive_key), (flat_graph, constant_key)],
    )
    def test_blocked_preserves_every_directly_identified_pair(
        self, graph_factory, keys_factory
    ):
        graph, keys = graph_factory(), keys_factory()
        outcome = chase(graph, keys)
        blocked, _, _ = blocked_candidate_pairs(graph, keys, mode="auto")
        fired = {step.pair for step in outcome.steps}
        assert fired <= set(blocked)
        # and therefore the fixpoint is unchanged
        assert chase(graph, keys, blocking="auto").pairs() == outcome.pairs()

    def test_blocking_actually_prunes(self):
        graph, keys = flat_graph(12, collide=4), flat_key()
        blocked, stats, _ = blocked_candidate_pairs(graph, keys, mode="auto")
        assert stats.pairs_pruned > 0
        assert len(blocked) < stats.quadratic_pairs
        assert stats.blocks_touched > 0
        assert stats.certified_types == 1
        assert stats.fallback_types == 0

    def test_snapshot_and_graph_paths_agree(self):
        graph, keys = book_graph(), recursive_key()
        snapshot = GraphSnapshot.build(graph)
        from_graph, _, _ = blocked_candidate_pairs(graph, keys, mode="auto")
        from_snapshot, _, _ = blocked_candidate_pairs(
            graph, keys, mode="auto", snapshot=snapshot
        )
        assert from_graph == from_snapshot

    def test_auto_falls_back_to_quadratic_for_uncertified_types(self):
        graph = flat_graph()
        for i in range(0, 8, 2):
            graph.add_edge(f"p{i}", "friend", f"p{i + 1}")
        keys = uncertified_key()
        blocked, stats, _ = blocked_candidate_pairs(graph, keys, mode="auto")
        assert stats.fallback_types == 1
        assert stats.certified_types == 0
        assert blocked == candidate_pairs(graph, keys)  # no pruning, no loss

    def test_force_refuses_uncertified_keys(self):
        graph, keys = flat_graph(), uncertified_key()
        with pytest.raises(ConfigError, match="pfriend"):
            blocked_candidate_pairs(graph, keys, mode="force")

    def test_force_equals_auto_when_certified(self):
        graph, keys = flat_graph(), flat_key()
        auto_pairs, _, _ = blocked_candidate_pairs(graph, keys, mode="auto")
        force_pairs, _, _ = blocked_candidate_pairs(graph, keys, mode="force")
        assert auto_pairs == force_pairs

    def test_mode_off_is_rejected_at_this_layer(self):
        graph, keys = flat_graph(), flat_key()
        with pytest.raises(ConfigError):
            blocked_candidate_pairs(graph, keys, mode="off")

    def test_index_reuse_skips_the_rebuild(self):
        graph, keys = flat_graph(), flat_key()
        pairs1, _, index = blocked_candidate_pairs(graph, keys, mode="auto")
        pairs2, _, index2 = blocked_candidate_pairs(graph, keys, mode="auto", index=index)
        assert pairs1 == pairs2
        assert index2 is index


# --------------------------------------------------------------------------- #
# incremental rebasing
# --------------------------------------------------------------------------- #


class TestRebasing:
    def test_rebased_index_equals_fresh_build(self):
        graph, keys = flat_graph(), flat_key()
        index = BlockingIndex.build(graph, keys)
        graph.add_entity("p_new", "person")
        graph.add_value("p_new", "name", "n0")
        graph.set_value("p3", "name", "totally_fresh")
        rebased = index.rebased(graph, affected_entities=("p_new", "p3"))
        fresh = BlockingIndex.build(graph, keys)
        assert rebased.candidate_pairs("auto")[0] == fresh.candidate_pairs("auto")[0]

    def test_rebase_drops_removed_entities(self):
        graph, keys = book_graph(), recursive_key()
        index = BlockingIndex.build(graph, keys)
        for triple in graph.out_triples("b0").copy():
            graph.remove_triple(triple)
        rebased = index.rebased(graph, affected_entities=("b0", "a0"))
        fresh = BlockingIndex.build(graph, keys)
        assert rebased.candidate_pairs("auto")[0] == fresh.candidate_pairs("auto")[0]


# --------------------------------------------------------------------------- #
# satellite: candidate_pairs determinism is insertion-order independent
# --------------------------------------------------------------------------- #


class TestCandidatePairOrder:
    def test_insertion_order_does_not_change_the_enumeration(self):
        keys = flat_key()
        forward, backward = Graph(), Graph()
        ids = [f"p{i}" for i in range(7)]
        for eid in ids:
            forward.add_entity(eid, "person")
            forward.add_value(eid, "name", "shared")
        for eid in reversed(ids):
            backward.add_entity(eid, "person")
            backward.add_value(eid, "name", "shared")
        assert candidate_pairs(forward, keys) == candidate_pairs(backward, keys)
        blocked_fwd, _, _ = blocked_candidate_pairs(forward, keys, mode="auto")
        blocked_bwd, _, _ = blocked_candidate_pairs(backward, keys, mode="auto")
        assert blocked_fwd == blocked_bwd

    def test_pairs_are_grouped_by_type_and_sorted_within_each_group(self):
        graph = flat_graph()
        for i in range(4):
            graph.add_entity(f"b{i}", "book")
            graph.add_value(f"b{i}", "name", "t")
        x = designated("x", "book")
        v = value_var("v")
        book_key = Key(GraphPattern([PatternTriple(x, "name", v)], name="Q"), name="kb")
        keys = KeySet(list(flat_key()) + [book_key])
        pairs = candidate_pairs(graph, keys)
        # each pair canonically ordered
        assert all(e1 < e2 for e1, e2 in pairs)
        # grouped by target type (visited in sorted order), sorted within
        groups = [list(group) for _, group in itertools.groupby(pairs, key=lambda p: p[0][0])]
        assert len(groups) == 2  # 'b*' block then 'p*' block
        for group in groups:
            assert group == sorted(group)


# --------------------------------------------------------------------------- #
# the snapshot value index backing integer-space signature compilation
# --------------------------------------------------------------------------- #


class TestValueIndex:
    def test_value_postings_match_a_brute_force_scan(self):
        graph = flat_graph()
        snapshot = GraphSnapshot.build(graph)
        for predicate in ("name", "status"):
            pred_id = snapshot.pred_id(predicate)
            postings = snapshot.value_postings(pred_id)
            assert postings is not None
            literal_ids, subject_ids = postings
            seen = {
                (snapshot.node_at(l), snapshot.node_at(s))
                for l, s in zip(literal_ids, subject_ids)
            }
            expected = {
                (triple.obj, triple.subject)
                for triple in graph.triples()
                if triple.predicate == predicate and triple.object_is_value()
            }
            assert seen == expected
            # sorted by (literal id, subject id): binary-searchable
            assert list(zip(literal_ids, subject_ids)) == sorted(
                zip(literal_ids, subject_ids)
            )

    def test_out_ids_and_in_ids_agree_with_neighbor_lists(self):
        graph = book_graph()
        snapshot = GraphSnapshot.build(graph)
        pred = snapshot.pred_id("written_by")
        for i in range(6):
            book = snapshot.id_of(f"b{i}")
            author = snapshot.id_of(f"a{i}")
            assert list(snapshot.out_ids(book, pred)) == [author]
            assert list(snapshot.in_ids(author, pred)) == [book]

    def test_legacy_snapshots_degrade_to_no_postings(self):
        graph = flat_graph()
        snapshot = GraphSnapshot.build(graph)
        state = snapshot.__getstate__()
        for name in ("_vindex_offsets", "_vindex_literals", "_vindex_subjects"):
            state.pop(name, None)
        legacy = GraphSnapshot.__new__(GraphSnapshot)
        legacy.__setstate__(state)
        assert legacy.value_postings(0) is None
        # the blocking layer still works (object-space fallback)
        pairs, _, _ = blocked_candidate_pairs(graph, flat_key(), mode="auto", snapshot=legacy)
        reference, _, _ = blocked_candidate_pairs(graph, flat_key(), mode="auto")
        assert pairs == reference


# --------------------------------------------------------------------------- #
# session plumbing: flavors, counters, timers, config gating
# --------------------------------------------------------------------------- #


class TestSessionIntegration:
    def test_counters_and_phase_timers_appear(self):
        graph, keys = flat_graph(), flat_key()
        session = MatchSession(graph).with_keys(keys)
        result = session.run("EMOptMR", blocking="auto")
        info = session.cache_info()
        assert info.blocking_index_builds == 1
        assert info.blocking_index_rebases == 0
        assert info.blocking_pairs_pruned > 0
        assert info.blocking_blocks_touched > 0
        timings = session.phase_timings()
        assert "blocking_index_build" in timings
        assert "blocking_collision" in timings
        assert "blocking_pairing_filter" in timings
        assert result.pairs() == MatchSession(graph).with_keys(keys).run("EMOptMR").pairs()

    def test_blocked_and_quadratic_candidates_cache_separately(self):
        graph, keys = flat_graph(), flat_key()
        session = MatchSession(graph).with_keys(keys)
        session.run("EMOptMR")
        session.run("EMOptMR", blocking="auto")
        flavors = set(session._artifacts._candidates)
        assert {flavor[2] for flavor in flavors} == {False, True}

    def test_index_is_built_once_and_shared_across_backends(self):
        graph, keys = flat_graph(), flat_key()
        session = MatchSession(graph).with_keys(keys)
        for backend in ("chase", "EMMR", "EMOptMR", "EMVC", "EMOptVC"):
            session.run(backend, blocking="auto")
        assert session.cache_info().blocking_index_builds == 1

    def test_incremental_rerun_rebases_instead_of_rebuilding(self):
        graph, keys = flat_graph(), flat_key()
        session = MatchSession(graph).with_keys(keys).using("EMOptMR", blocking="auto")
        session.run()
        graph.add_entity("p_extra", "person")
        graph.add_value("p_extra", "name", "n1")
        incremental = session.rerun()
        info = session.cache_info()
        assert info.blocking_index_builds == 1
        assert info.blocking_index_rebases == 1
        full = MatchSession(graph).with_keys(keys).run("EMOptMR")
        assert incremental.pairs() == full.pairs()

    def test_force_mode_raises_cleanly_through_the_session(self):
        graph = flat_graph()
        for i in range(0, 8, 2):
            graph.add_edge(f"p{i}", "friend", f"p{i + 1}")
        session = MatchSession(graph).with_keys(uncertified_key())
        with pytest.raises(ConfigError, match="pfriend"):
            session.run("chase", blocking="force")

    def test_config_rejects_unknown_blocking_modes(self):
        from repro.api.config import MatchConfig

        with pytest.raises(ConfigError):
            MatchConfig(algorithm="chase", blocking="maybe")

    def test_config_round_trips_blocking_over_the_wire(self):
        from repro.api.config import MatchConfig

        config = MatchConfig(algorithm="EMOptMR", blocking="auto")
        assert MatchConfig.from_dict(config.to_dict()).blocking == "auto"
        assert "blocking=auto" in config.describe()

    def test_service_metrics_expose_blocking_counters(self):
        from repro.service.registry import GraphRegistry

        registry = GraphRegistry()
        entry = registry.register("g", flat_graph(), flat_key())
        entry.new_session().run("EMOptMR", blocking="auto")
        cache = entry.describe()["cache"]
        assert cache["blocking_index_builds"] == 1
        assert cache["blocking_pairs_pruned"] > 0
