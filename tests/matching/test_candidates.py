"""Tests of candidate-set construction, the pairing filter and dependencies."""

from __future__ import annotations

import pytest

from repro.core.chase import chase
from repro.matching.candidates import (
    build_candidates,
    build_filtered_candidates,
    dependency_map,
)


class TestBuildCandidates:
    def test_unfiltered_candidates_music(self, music):
        graph, keys, _ = music
        candidates = build_candidates(graph, keys)
        assert candidates.size == candidates.unfiltered_size == 6
        assert candidates.neighborhoods.total_size() > 0

    def test_filter_never_drops_identifiable_pairs(self, music, business, small_synthetic):
        cases = [music[:2], business[:2], (small_synthetic.graph, small_synthetic.keys)]
        for graph, keys in cases:
            identified = chase(graph, keys).pairs()
            filtered = build_filtered_candidates(graph, keys)
            assert identified <= set(filtered.pairs)

    def test_filter_reduces_candidates_on_synthetic_data(self, small_synthetic):
        graph, keys = small_synthetic.graph, small_synthetic.keys
        unfiltered = build_candidates(graph, keys)
        filtered = build_filtered_candidates(graph, keys)
        assert filtered.size <= unfiltered.size
        assert 0.0 <= filtered.reduction_ratio() <= 1.0

    def test_neighborhood_reduction_factor(self, small_synthetic):
        graph, keys = small_synthetic.graph, small_synthetic.keys
        filtered = build_filtered_candidates(graph, keys, reduce_neighborhoods=True)
        assert filtered.neighborhood_reduction_factor() >= 1.0

    def test_reduce_neighborhoods_flag(self, music):
        graph, keys, _ = music
        kept = build_filtered_candidates(graph, keys, reduce_neighborhoods=False)
        reduced = build_filtered_candidates(graph, keys, reduce_neighborhoods=True)
        assert kept.neighborhoods.total_size() >= reduced.neighborhoods.total_size()


class TestDependencyMap:
    def test_music_dependencies(self, music):
        """(art1, art2) depends on (alb1, alb2) through the recursive key Q3."""
        graph, keys, _ = music
        candidates = build_candidates(graph, keys)
        dependents = dependency_map(graph, keys, candidates)
        assert ("art1", "art2") in dependents[("alb1", "alb2")]

    def test_value_based_only_keys_have_no_dependencies(self, address):
        graph, keys, _ = address
        candidates = build_candidates(graph, keys)
        dependents = dependency_map(graph, keys, candidates)
        assert all(not deps for deps in dependents.values())

    def test_synthetic_chain_dependencies_point_upwards(self, small_synthetic):
        graph, keys = small_synthetic.graph, small_synthetic.keys
        candidates = build_candidates(graph, keys)
        dependents = dependency_map(graph, keys, candidates)
        # at least one level-2 pair must have a level-1 dependent
        assert any(deps for deps in dependents.values())
