"""Wire serialization of EMResult: stable JSON, lossless round trips."""

from __future__ import annotations

import json

import pytest

from repro import ALGORITHMS, MatchSession
from repro.matching.result import EMResult, EMStatistics


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_round_trip_preserves_every_run_outcome(music, algorithm):
    graph, keys, expected = music
    result = MatchSession(graph).with_keys(keys).run(algorithm)
    rebuilt = EMResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert rebuilt.pairs() == result.pairs() == expected
    assert rebuilt.algorithm == result.algorithm
    assert rebuilt.processors == result.processors
    assert rebuilt.simulated_seconds == result.simulated_seconds
    assert rebuilt.wall_seconds == result.wall_seconds
    assert rebuilt.stats == result.stats
    assert rebuilt.cost_breakdown == result.cost_breakdown


def test_encoding_is_deterministic_for_identical_runs(music):
    graph, keys, _expected = music
    first = MatchSession(graph).with_keys(keys).run("chase")
    second = MatchSession(graph).with_keys(keys).run("chase")
    payload = lambda r: {**r.to_dict(), "wall_seconds": 0.0}  # clock aside
    assert json.dumps(payload(first), sort_keys=True) == json.dumps(
        payload(second), sort_keys=True
    )


def test_classes_are_sorted_nontrivial_classes(music):
    graph, keys, _expected = music
    result = MatchSession(graph).with_keys(keys).run("EMOptVC")
    classes = result.to_dict()["classes"]
    assert classes == sorted(sorted(c) for c in result.eq.nontrivial_classes())
    assert all(len(c) >= 2 for c in classes)  # singletons carry no information


def test_statistics_reader_ignores_unknown_counters():
    stats = EMStatistics.from_dict({"checks": 7, "counter_from_the_future": 1})
    assert stats.checks == 7
    assert not hasattr(stats, "counter_from_the_future")


def test_from_dict_defaults_optional_fields():
    rebuilt = EMResult.from_dict(
        {"algorithm": "chase", "processors": 1, "classes": [["a", "b"]]}
    )
    assert rebuilt.pairs() == {("a", "b")}
    assert rebuilt.wall_seconds == 0.0 and rebuilt.cost_breakdown == {}
