"""Tests of the product graph Gp and the traversal orders P_Q."""

from __future__ import annotations

import pytest

from repro.matching.candidates import build_filtered_candidates
from repro.matching.product_graph import ProductGraph
from repro.matching.traversal_order import traversal_order, traversal_orders, tour_is_valid
from repro.datasets.business import business_dataset
from repro.datasets.music import key_q1, key_q2, key_q3, music_dataset
from repro.datasets.synthetic import synthetic_dataset


def build_product_graph(graph, keys) -> ProductGraph:
    candidates = build_filtered_candidates(graph, keys, reduce_neighborhoods=False)
    return ProductGraph(graph, keys, candidates)


class TestProductGraph:
    def test_candidate_pairs_are_nodes(self, music):
        graph, keys, _ = music
        product = build_product_graph(graph, keys)
        assert product.has_node(("alb1", "alb2"))
        assert ("alb1", "alb2") in product.candidate_nodes()

    def test_value_pairs_become_nodes(self, music):
        graph, keys, _ = music
        product = build_product_graph(graph, keys)
        from repro.core.triples import Literal

        assert product.has_node((Literal("Anthology 2"), Literal("Anthology 2")))

    def test_forward_and_backward_neighbors(self, music):
        graph, keys, _ = music
        product = build_product_graph(graph, keys)
        forward = product.forward_neighbors(("alb1", "alb2"), "recorded_by")
        assert ("art1", "art2") in forward
        backward = product.backward_neighbors(("art1", "art2"), "recorded_by")
        assert ("alb1", "alb2") in backward

    def test_dependents_follow_recursive_keys(self, music):
        graph, keys, _ = music
        product = build_product_graph(graph, keys)
        assert ("art1", "art2") in product.dependents_of(("alb1", "alb2"))

    def test_tc_index(self, music):
        graph, keys, _ = music
        product = build_product_graph(graph, keys)
        touching = product.candidate_pairs_touching("alb1")
        assert ("alb1", "alb2") in touching and ("alb1", "alb3") in touching

    def test_size_is_moderate(self, small_synthetic):
        """|Gp| stays within a small factor of |G| (the paper reports ≈ 2.7×)."""
        graph, keys = small_synthetic.graph, small_synthetic.keys
        product = build_product_graph(graph, keys)
        assert product.num_nodes < graph.num_nodes ** 2
        ratio = product.size() / graph.num_triples
        assert ratio < 10.0
        stats = product.stats()
        assert stats["nodes"] == product.num_nodes
        assert product.construction_work > 0


class TestTraversalOrder:
    @pytest.mark.parametrize("key_factory", [key_q1, key_q2, key_q3])
    def test_music_keys_have_valid_tours(self, key_factory):
        key = key_factory()
        steps = traversal_order(key.pattern)
        assert tour_is_valid(key.pattern, steps)
        assert len(steps) == 2 * key.size  # Lemma 11: at most 2|Q| propagations

    def test_business_keys_have_valid_tours(self):
        _, keys = business_dataset()
        for key in keys:
            assert tour_is_valid(key.pattern, traversal_order(key.pattern))

    def test_synthetic_keys_have_valid_tours(self):
        dataset = synthetic_dataset(num_keys=6, chain_length=3, radius=3, entities_per_type=3)
        for key in dataset.keys:
            steps = traversal_order(key.pattern)
            assert tour_is_valid(key.pattern, steps)
            assert steps[0].source_name == key.pattern.designated.name

    def test_traversal_orders_indexed_by_key_name(self, music):
        _, keys, _ = music
        orders = traversal_orders(keys)
        assert set(orders.keys()) == {"Q1", "Q2", "Q3"}

    def test_tour_validity_checker_rejects_broken_tours(self):
        key = key_q2()
        steps = traversal_order(key.pattern)
        assert not tour_is_valid(key.pattern, steps[:-1])  # does not return to x
        assert not tour_is_valid(key.pattern, steps[1:])   # does not start at x
