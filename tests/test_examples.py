"""Smoke tests: every example script must run successfully end to end."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_at_least_three_examples_exist():
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_cleanly(script: pathlib.Path):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must print something useful"
