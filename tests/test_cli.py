"""Tests of the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.parser import save_graph, save_keys
from repro.datasets.music import music_dataset


@pytest.fixture
def music_files(tmp_path):
    graph, keys = music_dataset()
    graph_path = tmp_path / "music.graph"
    keys_path = tmp_path / "music.keys"
    save_graph(graph, graph_path)
    save_keys(keys, keys_path)
    return str(graph_path), str(keys_path)


class TestMatchCommand:
    def test_match_reports_identified_pairs(self, music_files, capsys):
        graph_path, keys_path = music_files
        exit_code = main(
            ["match", "--graph", graph_path, "--keys", keys_path, "--algorithm", "EMOptVC"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "alb1 == alb2" in output
        assert "art1 == art2" in output

    def test_match_with_chase_algorithm(self, music_files, capsys):
        graph_path, keys_path = music_files
        assert main(["match", "--graph", graph_path, "--keys", keys_path, "--algorithm", "chase"]) == 0
        assert "identified" in capsys.readouterr().out

    def test_match_incremental_falls_back_with_provenance(self, music_files, capsys):
        # a one-shot CLI run has no previous result: --incremental silently
        # falls back to a full run and --profile says so
        graph_path, keys_path = music_files
        exit_code = main(
            ["match", "--graph", graph_path, "--keys", keys_path,
             "--algorithm", "chase", "--incremental", "--profile"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "alb1 == alb2" in output
        assert "delta provenance" in output
        assert "no previous result" in output

    def test_missing_file_reports_error(self, tmp_path, capsys):
        exit_code = main(
            ["match", "--graph", str(tmp_path / "nope.graph"), "--keys", str(tmp_path / "nope.keys")]
        )
        assert exit_code == 2
        assert "error" in capsys.readouterr().err

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_match_runs_on_real_executors(self, music_files, capsys, executor):
        graph_path, keys_path = music_files
        exit_code = main(
            [
                "match",
                "--graph", graph_path,
                "--keys", keys_path,
                "--algorithm", "EMOptMR",
                "--executor", executor,
                "--workers", "2",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert f"executor       : {executor} (2 workers)" in output
        assert "wall time" in output
        assert "alb1 == alb2" in output

    def test_match_rejects_executor_for_chase(self, music_files, capsys):
        graph_path, keys_path = music_files
        exit_code = main(
            [
                "match",
                "--graph", graph_path,
                "--keys", keys_path,
                "--algorithm", "chase",
                "--executor", "process",
            ]
        )
        assert exit_code == 2
        assert "does not support executor" in capsys.readouterr().err

    def test_match_forwards_fanout(self, music_files, capsys):
        graph_path, keys_path = music_files
        exit_code = main(
            [
                "match",
                "--graph", graph_path,
                "--keys", keys_path,
                "--algorithm", "EMOptVC",
                "--fanout", "1",
            ]
        )
        assert exit_code == 0
        assert "alb1 == alb2" in capsys.readouterr().out

    def test_match_forwards_set_options(self, music_files, capsys):
        graph_path, keys_path = music_files
        exit_code = main(
            [
                "match",
                "--graph", graph_path,
                "--keys", keys_path,
                "--algorithm", "EMOptVC",
                "--set", "prioritize=false",
                "--set", "fanout=2",
            ]
        )
        assert exit_code == 0
        assert "art1 == art2" in capsys.readouterr().out

    def test_unaccepted_option_reports_error(self, music_files, capsys):
        graph_path, keys_path = music_files
        exit_code = main(
            [
                "match",
                "--graph", graph_path,
                "--keys", keys_path,
                "--algorithm", "EMMR",
                "--fanout", "2",
            ]
        )
        assert exit_code == 2
        assert "does not accept option" in capsys.readouterr().err

    def test_malformed_set_option_reports_error(self, music_files, capsys):
        graph_path, keys_path = music_files
        exit_code = main(
            ["match", "--graph", graph_path, "--keys", keys_path, "--set", "fanout"]
        )
        assert exit_code == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_reserved_set_keys_report_clean_error(self, music_files, capsys):
        graph_path, keys_path = music_files
        exit_code = main(
            ["match", "--graph", graph_path, "--keys", keys_path, "--set", "processors=8"]
        )
        assert exit_code == 2
        assert "--processors" in capsys.readouterr().err


class TestSnapshotCommands:
    def test_save_info_verify_round_trip(self, music_files, tmp_path, capsys):
        graph_path, _keys_path = music_files
        store_dir = tmp_path / "snaps"
        assert main(["snapshot", "save", "--graph", graph_path, "--store", str(store_dir)]) == 0
        output = capsys.readouterr().out
        assert "fingerprint" in output
        files = list(store_dir.glob("*.snap"))
        assert len(files) == 1

        assert main(["snapshot", "info", str(files[0])]) == 0
        output = capsys.readouterr().out
        assert "format version: 2" in output
        assert "segment" in output

        assert main(["snapshot", "verify", str(files[0]), "--graph", graph_path]) == 0
        output = capsys.readouterr().out
        assert output.startswith("OK:")
        assert "fingerprint, graph version" in output

    def test_save_to_explicit_file(self, music_files, tmp_path, capsys):
        graph_path, _keys_path = music_files
        out = tmp_path / "music.snap"
        assert main(["snapshot", "save", "--graph", graph_path, "--out", str(out)]) == 0
        assert out.is_file()
        assert "wrote" in capsys.readouterr().out

    def test_verify_fails_on_corruption(self, music_files, tmp_path, capsys):
        graph_path, _keys_path = music_files
        out = tmp_path / "music.snap"
        assert main(["snapshot", "save", "--graph", graph_path, "--out", str(out)]) == 0
        capsys.readouterr()
        out.write_bytes(b"NOTASNAP" + out.read_bytes()[8:])
        assert main(["snapshot", "verify", str(out)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_info_on_a_non_snapshot_reports_error(self, music_files, capsys):
        graph_path, _keys_path = music_files
        assert main(["snapshot", "info", graph_path]) == 2
        assert "error" in capsys.readouterr().err

    def test_match_with_snapshot_store_reports_provenance(
        self, music_files, tmp_path, capsys
    ):
        graph_path, keys_path = music_files
        store_dir = str(tmp_path / "snaps")
        base = [
            "match", "--graph", graph_path, "--keys", keys_path,
            "--snapshot-store", store_dir, "--profile",
        ]
        assert main(base) == 0
        output = capsys.readouterr().out
        assert "built (store miss: 1), saved back" in output
        assert "alb1 == alb2" in output
        # second invocation: warm restart, the snapshot is loaded not built
        assert main(base) == 0
        output = capsys.readouterr().out
        assert "loaded from store (1 hit(s))" in output
        assert "snapshot_store_load" in output
        assert "alb1 == alb2" in output


class TestCheckCommand:
    def test_check_reports_violations(self, music_files, capsys):
        graph_path, keys_path = music_files
        exit_code = main(["check", "--graph", graph_path, "--keys", keys_path])
        output = capsys.readouterr().out
        assert exit_code == 1  # violations present → non-zero
        assert "duplicate candidates" in output


class TestGenerateCommand:
    @pytest.mark.parametrize("dataset", ["synthetic", "social", "knowledge"])
    def test_generate_writes_parseable_files(self, dataset, tmp_path, capsys):
        out_graph = tmp_path / "out.graph"
        out_keys = tmp_path / "out.keys"
        exit_code = main(
            [
                "generate",
                "--dataset", dataset,
                "--scale", "0.4",
                "--out-graph", str(out_graph),
                "--out-keys", str(out_keys),
            ]
        )
        assert exit_code == 0
        assert out_graph.exists() and out_keys.exists()
        # the generated files must round-trip through the match command
        assert main(["match", "--graph", str(out_graph), "--keys", str(out_keys)]) == 0


class TestBenchCommand:
    def test_bench_prints_series(self, capsys):
        exit_code = main(
            ["bench", "--dataset", "synthetic", "--processors", "2", "4", "--scale", "0.4"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "EMVC" in output and "speedup" in output


class TestAlgorithmsCommand:
    def test_lists_registered_algorithms_with_options(self, capsys):
        exit_code = main(["algorithms"])
        output = capsys.readouterr().out
        assert exit_code == 0
        for name in ("chase", "EMMR", "EMVF2MR", "EMOptMR", "EMVC", "EMOptVC"):
            assert name in output
        assert "vertex-centric" in output
        assert "fanout=4" in output  # EMOptVC's accepted options are shown

    def test_json_flag_emits_the_machine_readable_catalog(self, capsys):
        import json

        from repro import ALGORITHMS
        from repro.service import algorithm_catalog

        exit_code = main(["algorithms", "--json"])
        output = capsys.readouterr().out
        assert exit_code == 0
        payload = json.loads(output)  # valid JSON, nothing else on stdout
        assert payload == {"algorithms": algorithm_catalog()}
        names = {entry["name"] for entry in payload["algorithms"]}
        assert names == set(ALGORITHMS)
        for entry in payload["algorithms"]:
            for option in entry["options"]:
                assert isinstance(option["type"], str)  # JSON-safe types only
