"""The compiled integer-space VF2 path must replay the dict path exactly.

Same mappings, same enumeration order, same search statistics — on random
graphs (hypothesis), on the paper's examples, with anchors and with limits.
A custom node-compatibility predicate must bypass the compiled path (it
encodes default compatibility only) and still work on a snapshot target.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import Graph
from repro.core.neighborhood import d_neighborhood_nodes
from repro.core.triples import Literal
from repro.datasets.music import music_dataset
from repro.datasets.synthetic import synthetic_dataset
from repro.isomorphism.vf2 import VF2Matcher, brute_force_isomorphisms
from repro.storage import GraphSnapshot

_TYPES = ("a", "b", "c")
_PREDS = ("p", "q", "r")


@st.composite
def target_graphs(draw) -> Graph:
    graph = Graph()
    entities = []
    for index in range(draw(st.integers(min_value=1, max_value=7))):
        etype = draw(st.sampled_from(_TYPES))
        eid = f"{etype}{index}"
        graph.add_entity(eid, etype)
        entities.append(eid)
    for _ in range(draw(st.integers(min_value=0, max_value=12))):
        subject = draw(st.sampled_from(entities))
        predicate = draw(st.sampled_from(_PREDS))
        if draw(st.booleans()):
            graph.add_edge(subject, predicate, draw(st.sampled_from(entities)))
        else:
            graph.add_value(subject, predicate, draw(st.integers(min_value=0, max_value=3)))
    return graph


def _patterns_from(graph: Graph, max_triples: int = 5):
    for entity in graph.entity_ids():
        pattern = graph.induced_subgraph(d_neighborhood_nodes(graph, entity, 1))
        if 1 <= pattern.num_triples <= max_triples:
            yield pattern


def _assert_paths_identical(pattern: Graph, graph: Graph, snapshot: GraphSnapshot, **kwargs):
    dict_matcher = VF2Matcher(pattern, graph, **kwargs)
    compiled_matcher = VF2Matcher(pattern, snapshot, **kwargs)
    dict_mappings = dict_matcher.find_all()
    compiled_mappings = compiled_matcher.find_all()
    assert compiled_mappings == dict_mappings  # same mappings, same order
    assert vars(compiled_matcher.stats) == vars(dict_matcher.stats)


@given(graph=target_graphs())
@settings(max_examples=40, deadline=None)
def test_compiled_path_replays_dict_path_on_random_graphs(graph):
    snapshot = GraphSnapshot.build(graph)
    for pattern in _patterns_from(graph):
        _assert_paths_identical(pattern, graph, snapshot)


def test_compiled_path_on_music_patterns_and_brute_force():
    graph, _keys = music_dataset()
    snapshot = GraphSnapshot.build(graph)
    checked = 0
    for pattern in _patterns_from(graph, max_triples=4):
        _assert_paths_identical(pattern, graph, snapshot)
        if pattern.num_nodes <= 4 and graph.num_nodes <= 60:
            compiled = VF2Matcher(pattern, snapshot).find_all()
            brute = brute_force_isomorphisms(pattern, graph)
            assert sorted(map(sorted_items, compiled)) == sorted(map(sorted_items, brute))
        checked += 1
    assert checked > 0


def sorted_items(mapping):
    return sorted(mapping.items(), key=repr)


def test_compiled_path_respects_anchors_and_limits():
    dataset = synthetic_dataset(
        num_keys=6, chain_length=2, radius=2, entities_per_type=4, seed=3
    )
    graph = dataset.graph
    snapshot = GraphSnapshot.build(graph)
    for pattern in _patterns_from(graph):
        nodes = list(pattern.entity_ids())
        anchor = {nodes[0]: nodes[0]}  # anchor a pattern entity to itself
        assert VF2Matcher(pattern, snapshot, anchors=anchor).find_all() == VF2Matcher(
            pattern, graph, anchors=anchor
        ).find_all()
        assert VF2Matcher(pattern, snapshot).find_all(limit=2) == VF2Matcher(
            pattern, graph
        ).find_all(limit=2)
        assert VF2Matcher(pattern, snapshot).exists() == VF2Matcher(pattern, graph).exists()
        assert VF2Matcher(pattern, snapshot).count() == VF2Matcher(pattern, graph).count()
        break


def test_unknown_anchor_targets_mirror_dict_path_errors():
    """Unknown entity-ref anchors raise on both paths; unknown values don't."""
    import pytest

    from repro.exceptions import UnknownEntityError

    graph, _keys = music_dataset()
    snapshot = GraphSnapshot.build(graph)
    pattern = next(iter(_patterns_from(graph)))
    anchor_node = next(iter(pattern.entity_ids()))
    for target in (graph, snapshot):
        with pytest.raises(UnknownEntityError):
            VF2Matcher(pattern, target, anchors={anchor_node: "no-such-entity"}).find_all()
        with pytest.raises(UnknownEntityError):
            VF2Matcher(pattern, target, anchors={"ghost-node": anchor_node}).find_all()
        matcher = VF2Matcher(pattern, target, anchors={anchor_node: Literal("?!")})
        assert matcher.find_all() == []


def test_custom_compatibility_bypasses_compiled_path():
    """A non-default predicate runs the generic path over the snapshot."""
    graph, _keys = music_dataset()
    snapshot = GraphSnapshot.build(graph)
    pattern = next(iter(_patterns_from(graph)))

    def anything_goes(pattern_graph, pattern_node, target_graph, target_node):
        if isinstance(pattern_node, Literal) or isinstance(target_node, Literal):
            return pattern_node == target_node
        return True  # ignore entity types entirely

    loose_snapshot = VF2Matcher(pattern, snapshot, node_compatible=anything_goes).find_all()
    loose_dict = VF2Matcher(pattern, graph, node_compatible=anything_goes).find_all()
    assert loose_snapshot == loose_dict
    strict = VF2Matcher(pattern, snapshot).find_all()
    assert len(loose_snapshot) >= len(strict)
