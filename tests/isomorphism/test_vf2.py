"""Tests of the from-scratch VF2-style subgraph-isomorphism matcher."""

from __future__ import annotations

import pytest

from repro.core.graph import Graph
from repro.core.triples import Literal
from repro.isomorphism import (
    VF2Matcher,
    brute_force_isomorphisms,
    is_subgraph_isomorphic,
    subgraph_isomorphisms,
)


def make_triangle(prefix: str, etype: str = "node") -> Graph:
    g = Graph()
    names = [f"{prefix}{i}" for i in range(3)]
    for name in names:
        g.add_entity(name, etype)
    g.add_edge(names[0], "to", names[1])
    g.add_edge(names[1], "to", names[2])
    g.add_edge(names[2], "to", names[0])
    return g


def make_path(prefix: str, length: int, etype: str = "node") -> Graph:
    g = Graph()
    names = [f"{prefix}{i}" for i in range(length)]
    for name in names:
        g.add_entity(name, etype)
    for left, right in zip(names, names[1:]):
        g.add_edge(left, "to", right)
    return g


class TestBasicMatching:
    def test_triangle_in_triangle_has_three_rotations(self):
        pattern = make_triangle("p")
        target = make_triangle("t")
        mappings = subgraph_isomorphisms(pattern, target)
        assert len(mappings) == 3  # the three rotations (direction is fixed)

    def test_path_in_triangle(self):
        pattern = make_path("p", 3)
        target = make_triangle("t")
        assert is_subgraph_isomorphic(pattern, target)

    def test_triangle_not_in_path(self):
        pattern = make_triangle("p")
        target = make_path("t", 4)
        assert not is_subgraph_isomorphic(pattern, target)

    def test_type_constraints_respected(self):
        pattern = Graph()
        pattern.add_entity("p0", "album")
        pattern.add_entity("p1", "artist")
        pattern.add_edge("p0", "by", "p1")
        target = Graph()
        target.add_entity("t0", "album")
        target.add_entity("t1", "company")
        target.add_edge("t0", "by", "t1")
        assert not is_subgraph_isomorphic(pattern, target)

    def test_value_nodes_must_match_exactly(self):
        pattern = Graph()
        pattern.add_entity("p0", "album")
        pattern.add_value("p0", "name", "X")
        target = Graph()
        target.add_entity("t0", "album")
        target.add_value("t0", "name", "Y")
        assert not is_subgraph_isomorphic(pattern, target)
        target.add_value("t0", "name", "X")
        assert is_subgraph_isomorphic(pattern, target)

    def test_anchors_pin_the_mapping(self):
        pattern = make_path("p", 2)
        target = make_path("t", 4)
        anchored = subgraph_isomorphisms(pattern, target, anchors={"p0": "t2"})
        assert len(anchored) == 1
        assert anchored[0]["p0"] == "t2" and anchored[0]["p1"] == "t3"
        assert subgraph_isomorphisms(pattern, target, anchors={"p0": "t3"}) == []

    def test_limit_and_exists_and_count(self):
        pattern = make_path("p", 2)
        target = make_triangle("t")
        matcher = VF2Matcher(pattern, target)
        assert matcher.exists()
        assert matcher.count() == 3
        assert len(matcher.find_all(limit=2)) == 2

    def test_statistics_populated(self):
        pattern = make_path("p", 2)
        target = make_triangle("t")
        matcher = VF2Matcher(pattern, target)
        matcher.find_all()
        assert matcher.stats.solutions == 3
        assert matcher.stats.candidates_tried > 0


class TestAgainstBruteForce:
    @pytest.mark.parametrize("pattern_size,target_size", [(2, 3), (3, 3), (3, 4)])
    def test_same_count_as_brute_force_on_paths(self, pattern_size, target_size):
        pattern = make_path("p", pattern_size)
        target = make_path("t", target_size)
        fast = subgraph_isomorphisms(pattern, target)
        slow = brute_force_isomorphisms(pattern, target)
        assert len(fast) == len(slow)

    def test_same_count_with_values(self):
        pattern = Graph()
        pattern.add_entity("p0", "album")
        pattern.add_value("p0", "name", "X")
        target = Graph()
        for index in range(3):
            target.add_entity(f"t{index}", "album")
            target.add_value(f"t{index}", "name", "X")
        fast = subgraph_isomorphisms(pattern, target)
        slow = brute_force_isomorphisms(pattern, target)
        assert len(fast) == len(slow) == 3
