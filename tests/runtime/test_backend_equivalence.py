"""Executor equivalence: every backend, same results on every executor.

The acceptance bar of the runtime layer: for each registered backend, the
serial, thread and process executors must produce *bit-identical* results —
same identified pairs, same statistics, same simulated seconds — because the
partitioned schedules are pure functions of the configuration, never of where
the tasks physically ran.
"""

from __future__ import annotations

import pytest

from repro.api.registry import ALGORITHMS, get_algorithm
from repro.api.session import MatchSession
from repro.datasets.synthetic import synthetic_dataset
from repro.exceptions import ConfigError

EXECUTOR_KINDS = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(
        num_keys=8, chain_length=2, radius=2, entities_per_type=5, scale=1.0, seed=7
    )


@pytest.fixture(scope="module")
def executor_backends():
    return [
        name for name in ALGORITHMS if "executors" in get_algorithm(name).capabilities
    ]


def test_all_six_backends_are_registered(executor_backends):
    assert set(ALGORITHMS) == {"chase", "EMMR", "EMVF2MR", "EMOptMR", "EMVC", "EMOptVC"}
    assert executor_backends == ["EMMR", "EMVF2MR", "EMOptMR", "EMVC", "EMOptVC"]


def test_all_backends_agree_on_pairs_across_executors(dataset, executor_backends):
    """All six backends, serial/thread/process: one identical pair set."""
    session = MatchSession(dataset.graph).with_keys(dataset.keys)
    expected = session.run("chase").pairs()
    assert expected  # the seeded dataset must contain duplicates to find
    for name in executor_backends:
        for kind in EXECUTOR_KINDS:
            result = session.run(name, processors=4, executor=kind, workers=2)
            assert result.pairs() == expected, (name, kind)


def test_snapshot_path_is_bit_identical_to_the_dict_path_chase(dataset, executor_backends):
    """The compiled-snapshot read layer must not change chase(G, Σ).

    Session runs share one GraphSnapshot (built once); the dict-path chase —
    run on the bare graph, no session, no snapshot — is the ground truth
    every backend and every executor must reproduce exactly.
    """
    from repro.core.chase import chase

    dict_path = chase(dataset.graph, dataset.keys).pairs()
    session = MatchSession(dataset.graph).with_keys(dataset.keys)
    for name in ["chase"] + list(executor_backends):
        assert session.run(name).pairs() == dict_path, name
    for name in executor_backends:
        assert (
            session.run(name, executor="process", workers=2).pairs() == dict_path
        ), name
    assert session.cache_info().snapshot_builds == 1


@pytest.mark.parametrize("algorithm", ["EMMR", "EMVF2MR", "EMOptMR", "EMVC", "EMOptVC"])
def test_executor_results_are_bit_identical(dataset, algorithm):
    """Same stats, same simulated seconds, same pairs for every executor."""
    session = MatchSession(dataset.graph).with_keys(dataset.keys)
    reference = None
    for kind in EXECUTOR_KINDS:
        result = session.run(algorithm, processors=4, executor=kind, workers=2)
        if reference is None:
            reference = result
            continue
        assert result.pairs() == reference.pairs(), kind
        assert result.stats.as_dict() == reference.stats.as_dict(), kind
        assert result.simulated_seconds == pytest.approx(
            reference.simulated_seconds, abs=1e-12
        ), kind
        assert result.cost_breakdown == pytest.approx(reference.cost_breakdown), kind


@pytest.mark.parametrize("algorithm", ["EMOptMR", "EMOptVC"])
def test_partitioned_runs_match_classic_path(dataset, algorithm):
    """The executor path must find exactly what the classic path finds."""
    session = MatchSession(dataset.graph).with_keys(dataset.keys)
    classic = session.run(algorithm, processors=4)
    partitioned = session.run(algorithm, processors=4, executor="serial", workers=3)
    assert partitioned.pairs() == classic.pairs()


@pytest.mark.parametrize("strategy", ["hash", "chunk", "fragment"])
def test_vertex_partitioner_strategies_preserve_results(dataset, strategy):
    session = MatchSession(dataset.graph).with_keys(dataset.keys)
    classic = session.run("EMOptVC", processors=4)
    result = session.run(
        "EMOptVC", processors=4, executor="serial", workers=3, partitioner=strategy
    )
    assert result.pairs() == classic.pairs()


def test_wall_seconds_are_measured(dataset):
    session = MatchSession(dataset.graph).with_keys(dataset.keys)
    result = session.run("EMOptMR", processors=4, executor="serial")
    assert result.wall_seconds > 0
    assert result.summary()["wall_seconds"] == pytest.approx(result.wall_seconds, abs=1e-3)


def test_chase_rejects_executor_requests(dataset):
    session = MatchSession(dataset.graph).with_keys(dataset.keys)
    with pytest.raises(ConfigError, match="does not support executor"):
        session.run("chase", executor="process")


def test_using_applies_the_same_executor_gate_as_run(dataset):
    """using('chase').run() must behave like run('chase') on an executor session."""
    session = MatchSession(dataset.graph).with_keys(dataset.keys)
    session.using("EMOptMR", executor="serial", workers=2)
    direct = session.run("chase")
    via_using = session.using("chase").run()
    assert via_using.pairs() == direct.pairs()
    assert session.config.executor is None


def test_run_all_with_executor_skips_unsupporting_backends(dataset):
    """run_all on an executor session runs chase classically, not erroring."""
    session = MatchSession(dataset.graph).with_keys(dataset.keys)
    results = session.run_all(["chase", "EMOptMR"], executor="serial", workers=2)
    assert results["chase"].pairs() == results["EMOptMR"].pairs()
