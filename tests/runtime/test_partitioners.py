"""Property-based tests of the partitioning strategies."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ExecutorError
from repro.runtime import (
    ChunkPartitioner,
    FragmentPartitioner,
    HashPartitioner,
    create_partitioner,
    stable_hash,
)

#: Unique item sets shaped like the ids the engines partition (strings and
#: entity-pair tuples).
item_sets = st.one_of(
    st.lists(st.text(min_size=1, max_size=8), unique=True, max_size=60),
    st.lists(
        st.tuples(st.integers(0, 50), st.integers(0, 50)), unique=True, max_size=60
    ),
)
partition_counts = st.integers(min_value=1, max_value=7)

STRATEGIES = ["hash", "chunk", "fragment"]


@given(items=item_sets, parts=partition_counts)
@settings(max_examples=60, deadline=None)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_every_item_lands_in_exactly_one_partition(strategy, items, parts):
    """Coverage: the split is a partition in the mathematical sense."""
    partitioner = create_partitioner(strategy, parts)
    split = partitioner.split(items)
    assert len(split) == parts
    flat = [item for part in split for item in part]
    assert sorted(map(repr, flat)) == sorted(map(repr, items))


@given(items=item_sets, parts=partition_counts)
@settings(max_examples=60, deadline=None)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_split_is_deterministic(strategy, items, parts):
    partitioner = create_partitioner(strategy, parts)
    assert partitioner.split(items) == partitioner.split(items)
    assert partitioner.split(items) == create_partitioner(strategy, parts).split(items)


@given(items=item_sets, parts=partition_counts)
@settings(max_examples=60, deadline=None)
def test_chunk_split_is_balance_bounded(items, parts):
    """Chunk parts are maximally balanced: sizes differ by at most one."""
    sizes = [len(part) for part in ChunkPartitioner(parts).split(items)]
    assert max(sizes) - min(sizes) <= 1


@given(items=item_sets, parts=partition_counts)
@settings(max_examples=60, deadline=None)
def test_fragment_split_is_balance_bounded(items, parts):
    """Fragment loads stay below ideal + the largest affinity group."""
    affinity = lambda item: item[0] if isinstance(item, tuple) else item
    partitioner = FragmentPartitioner(parts, affinity=affinity)
    split = partitioner.split(items)
    if not items:
        return
    group_sizes: dict = {}
    for item in items:
        group_sizes[affinity(item)] = group_sizes.get(affinity(item), 0) + 1
    ideal = math.ceil(len(items) / parts)
    bound = ideal + max(group_sizes.values()) - 1
    assert max(len(part) for part in split) <= bound


@given(items=item_sets, parts=partition_counts)
@settings(max_examples=60, deadline=None)
def test_fragment_split_keeps_affinity_groups_together(items, parts):
    affinity = lambda item: item[0] if isinstance(item, tuple) else item
    split = FragmentPartitioner(parts, affinity=affinity).split(items)
    location = {}
    for index, part in enumerate(split):
        for item in part:
            key = repr(affinity(item))
            assert location.setdefault(key, index) == index


class TestStableHash:
    def test_known_values_are_pinned(self):
        """The hash must never change across runs, processes or versions —
        pinned values catch accidental re-salting."""
        assert stable_hash("e1") == stable_hash("e1")
        assert stable_hash(("a", "b")) == stable_hash(("a", "b"))
        assert stable_hash("e1") != stable_hash("e2")
        # crc32(repr(...)) of a few anchors, computed once and frozen here
        import zlib

        assert stable_hash("anchor") == zlib.crc32(b"'anchor'")
        assert stable_hash(("x", 3)) == zlib.crc32(b"('x', 3)")

    def test_unordered_collections_are_canonicalised(self):
        """Set/dict iteration order is hash-salted per process; the stable
        hash must not depend on it."""
        assert stable_hash(frozenset({"a", "b", "c"})) == stable_hash(
            frozenset({"c", "a", "b"})
        )
        assert stable_hash(("x", frozenset({"p", "q"}))) == stable_hash(
            ("x", frozenset({"q", "p"}))
        )
        # pinned: crc32 of the sorted canonical form, frozen here
        import zlib

        assert stable_hash(frozenset({"alpha", "beta", "gamma", "delta"})) == zlib.crc32(
            b"frozenset({'alpha', 'beta', 'delta', 'gamma'})"
        )

    def test_hash_assignment_is_stateless(self):
        partitioner = HashPartitioner(4)
        split = partitioner.split(["a", "b", "c", "d", "e"])
        for index, part in enumerate(split):
            for item in part:
                assert partitioner.assign(item) == index

    def test_realistic_ids_spread_reasonably(self):
        """Generated entity ids should not pile onto one worker."""
        items = [f"e{i}_{j}" for i in range(20) for j in range(10)]
        sizes = [len(part) for part in HashPartitioner(4).split(items)]
        assert min(sizes) > 0
        assert max(sizes) < 2 * math.ceil(len(items) / 4)


class TestValidation:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ExecutorError, match="unknown partitioner"):
            create_partitioner("random", 2)

    def test_invalid_partition_count_rejected(self):
        with pytest.raises(ExecutorError):
            HashPartitioner(0)

    def test_chunk_has_no_stateless_assignment(self):
        with pytest.raises(ExecutorError, match="no stateless assignment"):
            ChunkPartitioner(2).assign("x")
