"""Tests of the shared executor layer."""

from __future__ import annotations

import os
import threading

import pytest

from repro.exceptions import ExecutorError
from repro.runtime import (
    EXECUTOR_KINDS,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    create_executor,
    default_worker_count,
)


def square_task(shared, value):
    return value * value


def shared_plus(shared, value):
    return shared + value


def pid_task(shared, _index):
    return os.getpid()


def thread_task(shared, _index):
    return threading.current_thread().name


def failing_task(shared, value):
    raise ValueError(f"boom {value}")


EXECUTOR_FACTORIES = {
    "serial": lambda: SerialExecutor(2),
    "thread": lambda: ThreadExecutor(2),
    "process": lambda: ProcessExecutor(2),
}


@pytest.mark.parametrize("kind", list(EXECUTOR_FACTORIES))
class TestExecutorContract:
    def test_results_preserve_batch_order(self, kind):
        with EXECUTOR_FACTORIES[kind]() as executor:
            results = executor.run_tasks(square_task, [(i,) for i in range(10)])
        assert results == [i * i for i in range(10)]

    def test_shared_payload_reaches_every_task(self, kind):
        with EXECUTOR_FACTORIES[kind]() as executor:
            results = executor.run_tasks(shared_plus, [(i,) for i in range(5)], shared=100)
        assert results == [100 + i for i in range(5)]

    def test_task_exceptions_propagate(self, kind):
        with EXECUTOR_FACTORIES[kind]() as executor:
            with pytest.raises(ValueError, match="boom"):
                executor.run_tasks(failing_task, [(1,)])

    def test_empty_batch_list(self, kind):
        with EXECUTOR_FACTORIES[kind]() as executor:
            assert executor.run_tasks(square_task, []) == []


class TestProcessExecutor:
    def test_tasks_run_in_other_processes(self):
        with ProcessExecutor(2) as executor:
            pids = executor.run_tasks(pid_task, [(i,) for i in range(4)])
        assert all(pid != os.getpid() for pid in pids)

    def test_pool_reused_for_same_shared_payload(self):
        shared = {"key": "value"}
        with ProcessExecutor(1) as executor:
            executor.run_tasks(shared_plus_len, [(1,)], shared=shared)
            first_pool = executor._pool
            executor.run_tasks(shared_plus_len, [(2,)], shared=shared)
            assert executor._pool is first_pool
            # a different payload forces a pool rebuild (workers must re-init)
            executor.run_tasks(shared_plus_len, [(3,)], shared={"other": 1})
            assert executor._pool is not first_pool


def shared_plus_len(shared, value):
    return len(shared) + value


class TestThreadExecutor:
    def test_runs_on_pool_threads(self):
        with ThreadExecutor(2) as executor:
            names = executor.run_tasks(thread_task, [(i,) for i in range(4)])
        assert all(name.startswith("repro-runtime") for name in names)


class TestFactory:
    def test_none_means_single_worker_serial(self):
        executor = create_executor(None)
        assert isinstance(executor, SerialExecutor)
        assert executor.workers == 1

    def test_default_workers_identical_across_kinds(self):
        expected = default_worker_count(8)
        serial = create_executor("serial", processors=8)
        thread = create_executor("thread", processors=8)
        assert serial.workers == thread.workers == expected
        thread.close()

    def test_explicit_workers_respected(self):
        executor = create_executor("thread", 3)
        assert executor.workers == 3
        executor.close()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExecutorError, match="unknown executor kind"):
            create_executor("gpu")

    @pytest.mark.parametrize("workers", [0, -1, True, 1.5])
    def test_invalid_worker_counts_rejected(self, workers):
        with pytest.raises(ExecutorError):
            SerialExecutor(workers)

    def test_kinds_registry(self):
        assert EXECUTOR_KINDS == ("serial", "thread", "process")
