"""Tests of the top-level public API (the README / docstring quickstart)."""

from __future__ import annotations

import pytest

import repro


def test_version_and_exports():
    assert repro.__version__
    for name in repro.__all__:
        assert hasattr(repro, name), f"missing export {name}"


def test_quickstart_from_module_docstring():
    graph = repro.Graph()
    graph.add_entity("alb1", "album")
    graph.add_entity("alb2", "album")
    graph.add_value("alb1", "name_of", "Anthology 2")
    graph.add_value("alb2", "name_of", "Anthology 2")
    graph.add_value("alb1", "release_year", "1996")
    graph.add_value("alb2", "release_year", "1996")

    keys = repro.parse_keys(
        """
        key album_by_name_and_year for album:
          x -[name_of]-> name*
          x -[release_year]-> year*
        """
    )
    result = repro.match_entities(graph, keys, algorithm="EMOptVC")
    assert result.identified("alb1", "alb2")


def test_algorithm_registry_is_complete():
    assert set(repro.ALGORITHMS) == {"chase", "EMMR", "EMVF2MR", "EMOptMR", "EMVC", "EMOptVC"}


def test_exception_hierarchy():
    assert issubclass(repro.GraphError, repro.ReproError)
    assert issubclass(repro.ParseError, repro.ReproError)
    assert issubclass(repro.MatchingError, repro.ReproError)
    assert issubclass(repro.UnknownEntityError, repro.GraphError)


def test_chase_and_proof_api_work_together():
    from repro.datasets.music import music_dataset

    graph, keys = music_dataset()
    chase_result = repro.chase(graph, keys)
    proof = repro.proof_from_chase(chase_result)
    assert repro.verify_proof(graph, keys, proof)
    steps = repro.explain(graph, keys, chase_result, "art1", "art2")
    assert steps and steps[-1].pair == ("art1", "art2")
