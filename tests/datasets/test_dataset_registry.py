"""Tests of the dataset registry used by the CLI and harness."""

from __future__ import annotations

import pytest

from repro.core.graph import Graph
from repro.core.key import KeySet
from repro.datasets import DATASETS, dataset_factory, dataset_spec, make_dataset
from repro.exceptions import DatasetError


def test_expected_datasets_registered():
    assert {"synthetic", "social", "knowledge", "music"} <= set(DATASETS)


def test_unknown_dataset_raises():
    with pytest.raises(DatasetError, match="unknown dataset"):
        dataset_spec("imaginary")


@pytest.mark.parametrize("name", ["synthetic", "social", "knowledge", "music"])
def test_make_dataset_returns_graph_and_keys(name):
    graph, keys = make_dataset(name, scale=0.4, chain_length=1, radius=1, seed=3)
    assert isinstance(graph, Graph) and isinstance(keys, KeySet)
    assert graph.num_entities > 0 and keys.cardinality > 0


def test_unaccepted_parameters_are_filtered():
    # social_dataset has no num_keys parameter; the registry must drop it
    graph, keys = make_dataset("social", num_keys=99, scale=0.4, seed=3)
    assert graph.num_entities > 0


def test_factory_is_reusable_and_deterministic():
    factory = dataset_factory("synthetic")
    graph1, keys1 = factory(scale=0.4, seed=5)
    graph2, keys2 = factory(scale=0.4, seed=5)
    assert graph1.num_triples == graph2.num_triples
    assert keys1.cardinality == keys2.cardinality
