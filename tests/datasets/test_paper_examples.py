"""Tests of the hand-built paper examples (music G1, business G2, address)."""

from __future__ import annotations

from repro.core.matching import satisfies, violations
from repro.datasets.business import (
    address_graph,
    address_keys,
    business_graph,
    business_keys,
    key_q4,
    key_q5,
    key_q6,
)
from repro.datasets.music import key_q1, key_q2, key_q3, music_graph, music_keys


class TestMusicExample:
    def test_graph_matches_fig2(self):
        graph = music_graph()
        assert graph.num_entities == 6
        assert graph.entities_of_type("album") == ["alb1", "alb2", "alb3"]
        assert graph.has_triple("alb1", "recorded_by", "art1")

    def test_key_shapes(self):
        assert key_q1().is_recursive and key_q1().target_type == "album"
        assert key_q2().is_value_based
        assert key_q3().is_recursive and key_q3().target_type == "artist"
        assert music_keys().cardinality == 3

    def test_example5_violations(self):
        """Example 5: either alb1 or alb2 is a duplicate (violation of Q2)."""
        graph = music_graph()
        assert not satisfies(graph, key_q2())
        assert violations(graph, key_q2()) == [("alb1", "alb2")]


class TestBusinessExample:
    def test_graph_matches_fig2(self):
        graph = business_graph()
        assert graph.num_entities == 6
        assert graph.has_triple("com1", "parent_of", "com4")
        assert graph.has_triple("com3", "parent_of", "com5")

    def test_key_shapes(self):
        q4, q5 = key_q4(), key_q5()
        assert q4.is_recursive and q5.is_recursive
        assert len(q4.pattern.wildcards()) == 1
        assert len(q5.pattern.wildcards()) == 1
        assert business_keys().cardinality == 2

    def test_example5_business_violation(self):
        graph = business_graph()
        assert violations(graph, key_q4()) == [("com4", "com5")]


class TestAddressExample:
    def test_constant_condition_limits_scope(self):
        """Q6 only applies to UK streets: US streets sharing a zip are untouched."""
        graph = address_graph()
        assert violations(graph, key_q6()) == [("st_uk_1", "st_uk_2")]
        assert address_keys().by_name("Q6").is_value_based
