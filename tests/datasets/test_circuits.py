"""Tests of the monotone-circuit reduction (Theorem 4 construction)."""

from __future__ import annotations

import pytest

from repro.core.chase import chase
from repro.datasets.circuits import (
    MonotoneCircuit,
    deep_and_chain,
    encode_circuit,
    expected_identified_pairs,
    gate_pair,
    random_monotone_circuit,
)
from repro.exceptions import DatasetError


class TestCircuitModel:
    def test_evaluation(self):
        circuit = MonotoneCircuit()
        circuit.add_input("a", True)
        circuit.add_input("b", False)
        circuit.add_and("both", "a", "b")
        circuit.add_or("either", "a", "b")
        circuit.set_output("either")
        values = circuit.evaluate()
        assert values == {"a": True, "b": False, "both": False, "either": True}
        assert circuit.output_value() is True

    def test_validation(self):
        circuit = MonotoneCircuit()
        with pytest.raises(DatasetError):
            circuit.add_and("g", "missing", "also_missing")
        circuit.add_input("a", True)
        with pytest.raises(DatasetError):
            circuit.add_input("a", False)
        with pytest.raises(DatasetError):
            circuit.set_output("missing")
        with pytest.raises(DatasetError):
            MonotoneCircuit().output_value()


class TestEncoding:
    def test_true_gates_are_identified(self):
        circuit = MonotoneCircuit()
        circuit.add_input("a", True)
        circuit.add_input("b", True)
        circuit.add_input("c", False)
        circuit.add_and("ab", "a", "b")
        circuit.add_and("abc", "ab", "c")
        circuit.add_or("out", "abc", "ab")
        circuit.set_output("out")
        graph, keys = encode_circuit(circuit)
        result = chase(graph, keys)
        assert result.pairs() == expected_identified_pairs(circuit)
        assert result.identified(*gate_pair("out"))
        assert not result.identified(*gate_pair("abc"))

    def test_gate_with_identical_inputs(self):
        circuit = MonotoneCircuit()
        circuit.add_input("a", True)
        circuit.add_and("aa", "a", "a")
        circuit.add_or("oo", "aa", "aa")
        circuit.set_output("oo")
        graph, keys = encode_circuit(circuit)
        assert chase(graph, keys).pairs() == expected_identified_pairs(circuit)

    def test_deep_chain_depth_matches_rounds_potential(self):
        circuit = deep_and_chain(depth=6)
        graph, keys = encode_circuit(circuit)
        assert chase(graph, keys).pairs() == expected_identified_pairs(circuit)
        assert keys.dependency_chain_length() >= 6

    def test_false_chain_identifies_only_true_input(self):
        circuit = deep_and_chain(depth=3, value=False)
        graph, keys = encode_circuit(circuit)
        result = chase(graph, keys)
        assert result.pairs() == expected_identified_pairs(circuit)
        assert result.pairs() == {tuple(sorted(gate_pair("in_b")))}

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_circuits_agree_with_direct_evaluation(self, seed):
        circuit = random_monotone_circuit(num_inputs=4, num_gates=6, seed=seed)
        graph, keys = encode_circuit(circuit)
        assert chase(graph, keys).pairs() == expected_identified_pairs(circuit)

    def test_generator_validation(self):
        with pytest.raises(DatasetError):
            random_monotone_circuit(0, 1)
        with pytest.raises(DatasetError):
            deep_and_chain(0)
