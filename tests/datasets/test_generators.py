"""Tests of the synthetic / social / knowledge generators and the key generator."""

from __future__ import annotations

import pytest

from repro.core.chase import chase
from repro.datasets.keygen import generate_keys
from repro.datasets.knowledge import knowledge_dataset, knowledge_keys
from repro.datasets.social import reconciliation_keys, social_dataset, social_keys
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic, synthetic_dataset
from repro.exceptions import DatasetError
from repro.matching import match_entities


class TestKeyGenerator:
    def test_requested_chain_and_radius(self):
        keys = generate_keys(num_keys=12, chain_length=3, radius=2)
        assert keys.cardinality >= 12
        assert keys.dependency_chain_length() == 3
        assert keys.max_radius() == 2

    @pytest.mark.parametrize("chain_length", [1, 2, 4])
    def test_value_based_anchor_exists_per_group(self, chain_length):
        keys = generate_keys(num_keys=chain_length * 2, chain_length=chain_length, radius=1)
        assert keys.value_based_keys(), "each chain needs a value-based anchor key"

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_keys(0)
        from repro.datasets.keygen import recursive_key, value_based_key

        with pytest.raises(ValueError):
            value_based_key(0, 1, 0)
        with pytest.raises(ValueError):
            recursive_key(0, 1, 0)


class TestSyntheticGenerator:
    def test_determinism(self):
        first = synthetic_dataset(seed=42)
        second = synthetic_dataset(seed=42)
        assert first.graph == second.graph
        assert first.planted_pairs == second.planted_pairs

    def test_different_seeds_differ(self):
        assert synthetic_dataset(seed=1).graph != synthetic_dataset(seed=2).graph

    def test_scale_increases_size(self):
        small = synthetic_dataset(scale=0.5)
        large = synthetic_dataset(scale=1.5)
        assert large.graph.num_triples > small.graph.num_triples

    def test_chase_finds_exactly_planted_pairs(self):
        dataset = synthetic_dataset(num_keys=6, chain_length=3, radius=2, entities_per_type=4)
        assert chase(dataset.graph, dataset.keys).pairs() == dataset.planted_pairs

    def test_radius_one_has_no_aux_entities(self):
        dataset = synthetic_dataset(num_keys=4, chain_length=1, radius=1, entities_per_type=4)
        assert all(not t.startswith("A") for t in dataset.graph.types())

    def test_invalid_config_rejected(self):
        with pytest.raises(DatasetError):
            SyntheticConfig(chain_length=0)
        with pytest.raises(DatasetError):
            SyntheticConfig(duplicate_fraction=2.0)
        with pytest.raises(DatasetError):
            SyntheticConfig(scale=0)
        with pytest.raises(DatasetError):
            SyntheticConfig(entities_per_type=1)

    def test_summary(self):
        dataset = generate_synthetic()
        summary = dataset.summary()
        assert summary["planted_pairs"] == len(dataset.planted_pairs)
        assert summary["keys"] == dataset.keys.cardinality


class TestDomainGenerators:
    @pytest.mark.parametrize("factory,keys_factory", [
        (social_dataset, social_keys),
        (knowledge_dataset, knowledge_keys),
    ])
    def test_keys_match_generated_graph(self, factory, keys_factory):
        dataset = factory(scale=0.4, chain_length=2, radius=2)
        assert {k.name for k in dataset.keys} == {k.name for k in keys_factory(2, 2)}
        assert chase(dataset.graph, dataset.keys).pairs() == dataset.planted_pairs

    def test_chain_and_radius_limits_enforced(self):
        with pytest.raises(DatasetError):
            social_dataset(chain_length=99)
        with pytest.raises(DatasetError):
            knowledge_dataset(radius=99)

    def test_deeper_chains_still_exact(self):
        dataset = social_dataset(scale=0.4, chain_length=3, radius=2)
        result = match_entities(dataset.graph, dataset.keys, algorithm="EMOptVC")
        assert result.pairs() == dataset.planted_pairs

    def test_reconciliation_keys_work_on_radius_one_network(self):
        dataset = social_dataset(scale=0.4, chain_length=3, radius=1)
        result = match_entities(dataset.graph, reconciliation_keys(), algorithm="chase")
        # the hand-written keys identify at least the duplicate user accounts
        user_pairs = {
            pair for pair in dataset.planted_pairs
            if dataset.graph.entity_type(pair[0]) == "user"
        }
        assert user_pairs <= result.pairs()

    def test_determinism(self):
        assert social_dataset(seed=5).graph == social_dataset(seed=5).graph
        assert knowledge_dataset(seed=5).graph == knowledge_dataset(seed=5).graph
