"""Property suite for the blocking layer: no false negatives, ever.

Three guarantees, each fuzzed over the synthetic dataset generator:

1. **Completeness** — blocked candidate enumeration is a subset of the
   quadratic enumeration that still contains every pair the unblocked chase
   directly identifies (so no key firing is ever lost).
2. **Identity** — the final ``Eq`` is bit-identical with blocking off, auto
   and force, for all six backends and under real executor pools.
3. **Incremental identity** — a session running blocked *and* incremental
   stays bit-identical to a from-scratch full run after arbitrary journalled
   mutation sequences (the PR-5 differential harness, with blocking on).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro import ALGORITHMS, MatchSession
from repro.core.chase import candidate_pairs, chase
from repro.datasets.synthetic import synthetic_dataset
from repro.matching.blocking import blocked_candidate_pairs

from tests.matching.test_incremental_equivalence import apply_random_mutation

BACKENDS = tuple(ALGORITHMS)


def fuzz_dataset(seed: int):
    return synthetic_dataset(
        num_keys=4, chain_length=2, radius=2, entities_per_type=3, seed=seed % 40
    )


# --------------------------------------------------------------------------- #
# 1. completeness: blocked ⊆ quadratic, ⊇ directly-identified
# --------------------------------------------------------------------------- #


@given(seed=st.integers(min_value=0, max_value=100_000))
@settings(max_examples=15, deadline=None)
def test_blocked_candidates_bracket_the_chase(seed):
    dataset = fuzz_dataset(seed)
    graph, keys = dataset.graph, dataset.keys
    quadratic = candidate_pairs(graph, keys)
    blocked, stats, _ = blocked_candidate_pairs(graph, keys, mode="auto")
    assert set(blocked) <= set(quadratic)
    assert stats.enumerated_pairs == len(blocked)
    assert stats.quadratic_pairs == len(quadratic)
    outcome = chase(graph, keys)
    fired = {step.pair for step in outcome.steps}
    assert fired <= set(blocked)


@given(seed=st.integers(min_value=0, max_value=100_000))
@settings(max_examples=15, deadline=None)
def test_blocked_output_is_an_ordered_subsequence(seed):
    dataset = fuzz_dataset(seed)
    graph, keys = dataset.graph, dataset.keys
    quadratic = candidate_pairs(graph, keys)
    blocked, _, _ = blocked_candidate_pairs(graph, keys, mode="auto")
    positions = {pair: index for index, pair in enumerate(quadratic)}
    indexes = [positions[pair] for pair in blocked]
    assert indexes == sorted(indexes)


# --------------------------------------------------------------------------- #
# 2. identity: the fixpoint never changes, any backend, any executor
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", BACKENDS)
@given(seed=st.integers(min_value=0, max_value=100_000))
@settings(max_examples=6, deadline=None)
def test_eq_identical_with_blocking_on_and_off(backend, seed):
    dataset = fuzz_dataset(seed)
    graph, keys = dataset.graph, dataset.keys
    session = MatchSession(graph).with_keys(keys)
    reference = session.run(backend).pairs()
    assert session.run(backend, blocking="auto").pairs() == reference


@pytest.mark.parametrize("backend", [name for name in BACKENDS if name != "chase"])
@pytest.mark.parametrize("executor", ["serial", "thread"])
def test_eq_identical_under_executor_pools(backend, executor):
    dataset = fuzz_dataset(23)
    graph, keys = dataset.graph, dataset.keys
    session = MatchSession(graph).with_keys(keys)
    reference = session.run(backend, executor=executor, workers=2).pairs()
    blocked = session.run(backend, executor=executor, workers=2, blocking="auto")
    assert blocked.pairs() == reference


@pytest.mark.parametrize("backend", ["EMOptMR", "EMOptVC"])
def test_eq_identical_on_process_pools(backend):
    dataset = fuzz_dataset(7)
    graph, keys = dataset.graph, dataset.keys
    session = MatchSession(graph).with_keys(keys)
    reference = session.run(backend, executor="process", workers=2).pairs()
    blocked = session.run(backend, executor="process", workers=2, blocking="auto")
    assert blocked.pairs() == reference


@given(seed=st.integers(min_value=0, max_value=100_000))
@settings(max_examples=8, deadline=None)
def test_force_equals_auto_whenever_force_is_accepted(seed):
    from repro.exceptions import ConfigError

    dataset = fuzz_dataset(seed)
    graph, keys = dataset.graph, dataset.keys
    auto_pairs, _, _ = blocked_candidate_pairs(graph, keys, mode="auto")
    try:
        force_pairs, _, _ = blocked_candidate_pairs(graph, keys, mode="force")
    except ConfigError:
        return  # an uncertified key shape: refusal is the contract
    assert force_pairs == auto_pairs


# --------------------------------------------------------------------------- #
# 3. incremental identity: blocked + incremental == full, under mutation fuzz
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", BACKENDS)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    rounds=st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=2),
)
@settings(max_examples=8, deadline=None)
# regression: a new entity's pair must enter the blocked universe even when
# its partner's signature went stale without a cached neighbourhood (the
# blocking-index rebase now sweeps the touched radius ball, not just the
# cached-entry stale set)
@example(seed=5452, rounds=[1, 2])
def test_blocked_incremental_equals_full_under_random_mutations(backend, seed, rounds):
    dataset = fuzz_dataset(seed)
    graph, keys = dataset.graph, dataset.keys
    session = MatchSession(graph).with_keys(keys).using(backend, blocking="auto")
    session.run()
    rng = random.Random(seed)
    for count in rounds:
        for _ in range(count):
            apply_random_mutation(graph, rng)
        incremental = session.rerun()
        reference = chase(graph, keys)
        assert incremental.eq.pairs() == reference.pairs(), session.last_delta()
