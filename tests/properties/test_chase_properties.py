"""Property-based tests of the chase: Church–Rosser, monotonicity, soundness."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chase import candidate_pairs, chase
from repro.core.key import KeySet
from repro.datasets.music import music_dataset
from repro.datasets.synthetic import synthetic_dataset


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_church_rosser_on_music(seed):
    """Proposition 1: any application order yields the same chase result."""
    graph, keys = music_dataset()
    rng = random.Random(seed)
    pairs = candidate_pairs(graph, keys)
    rng.shuffle(pairs)
    shuffled_keys = list(keys)
    rng.shuffle(shuffled_keys)
    shuffled = chase(graph, keys, pair_order=pairs, key_order=shuffled_keys)
    reference = chase(graph, keys)
    assert shuffled.pairs() == reference.pairs()


@given(
    seed=st.integers(min_value=0, max_value=500),
    chain_length=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=10, deadline=None)
def test_church_rosser_on_synthetic(seed, chain_length):
    dataset = synthetic_dataset(
        num_keys=4, chain_length=chain_length, radius=2, entities_per_type=3, seed=seed
    )
    graph, keys = dataset.graph, dataset.keys
    rng = random.Random(seed)
    pairs = candidate_pairs(graph, keys)
    rng.shuffle(pairs)
    assert chase(graph, keys, pair_order=pairs).pairs() == dataset.planted_pairs


@given(drop=st.integers(min_value=0, max_value=2))
@settings(max_examples=10, deadline=None)
def test_chase_is_monotone_in_keys(drop):
    """Removing a key can only shrink (never grow) the identified pairs."""
    graph, keys = music_dataset()
    full = chase(graph, keys).pairs()
    remaining = [key for index, key in enumerate(keys) if index != drop]
    reduced = chase(graph, KeySet(remaining)).pairs()
    assert reduced <= full


@given(seed=st.integers(min_value=0, max_value=200))
@settings(max_examples=10, deadline=None)
def test_chase_identifies_only_same_type_pairs(seed):
    """Soundness: identified pairs always share an entity type."""
    dataset = synthetic_dataset(
        num_keys=4, chain_length=2, radius=2, entities_per_type=3, seed=seed
    )
    result = chase(dataset.graph, dataset.keys)
    for e1, e2 in result.pairs():
        assert dataset.graph.entity_type(e1) == dataset.graph.entity_type(e2)
