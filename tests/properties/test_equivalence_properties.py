"""Property-based tests of the union–find equivalence relation."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.equivalence import EquivalenceRelation

members = st.sampled_from([f"e{i}" for i in range(8)])
merge_lists = st.lists(st.tuples(members, members), max_size=25)


@given(merges=merge_lists)
@settings(max_examples=60, deadline=None)
def test_relation_is_an_equivalence(merges):
    """Reflexive, symmetric and transitive after any sequence of merges."""
    eq = EquivalenceRelation([f"e{i}" for i in range(8)])
    for e1, e2 in merges:
        eq.merge(e1, e2)
    members_list = [f"e{i}" for i in range(8)]
    for a in members_list:
        assert eq.identified(a, a)
        for b in members_list:
            assert eq.identified(a, b) == eq.identified(b, a)
            for c in members_list:
                if eq.identified(a, b) and eq.identified(b, c):
                    assert eq.identified(a, c)


@given(merges=merge_lists)
@settings(max_examples=60, deadline=None)
def test_merge_order_is_irrelevant(merges):
    forward = EquivalenceRelation()
    backward = EquivalenceRelation()
    for e1, e2 in merges:
        forward.merge(e1, e2)
    for e1, e2 in reversed(merges):
        backward.merge(e2, e1)
    assert forward.pairs() == backward.pairs()


@given(merges=merge_lists)
@settings(max_examples=60, deadline=None)
def test_pairs_consistent_with_classes(merges):
    eq = EquivalenceRelation()
    for e1, e2 in merges:
        eq.merge(e1, e2)
    pairs = eq.pairs()
    expected = sum(len(c) * (len(c) - 1) // 2 for c in eq.classes())
    assert len(pairs) == expected
    assert all(a < b for a, b in pairs)
