"""Property-based round-trip tests of the graph/key DSL."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import Graph
from repro.core.parser import parse_graph, parse_keys, serialize_graph, serialize_keys
from repro.datasets.keygen import generate_keys

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True)
type_names = st.sampled_from(["album", "artist", "company", "street"])
predicates = st.sampled_from(["name_of", "recorded_by", "parent_of", "zip_code"])
scalar_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.text(alphabet="abcdefghij XYZ-", min_size=0, max_size=10).filter(
        lambda s: '"' not in s and "#" not in s
    ),
    st.booleans(),
)


@st.composite
def graphs(draw):
    graph = Graph()
    entity_ids = draw(st.lists(identifiers, min_size=1, max_size=6, unique=True))
    for eid in entity_ids:
        graph.add_entity(eid, draw(type_names))
    num_triples = draw(st.integers(min_value=0, max_value=10))
    for _ in range(num_triples):
        subject = draw(st.sampled_from(entity_ids))
        predicate = draw(predicates)
        if draw(st.booleans()):
            graph.add_edge(subject, predicate, draw(st.sampled_from(entity_ids)))
        else:
            graph.add_value(subject, predicate, draw(scalar_values))
    return graph


@given(graph=graphs())
@settings(max_examples=60, deadline=None)
def test_graph_round_trip(graph):
    assert parse_graph(serialize_graph(graph)) == graph


@given(
    num_keys=st.integers(min_value=1, max_value=8),
    chain_length=st.integers(min_value=1, max_value=4),
    radius=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_generated_keys_round_trip(num_keys, chain_length, radius):
    keys = generate_keys(num_keys, chain_length, radius)
    parsed = parse_keys(serialize_keys(keys))
    assert parsed.cardinality == keys.cardinality
    for key in keys:
        assert parsed.by_name(key.name).pattern == key.pattern
        assert parsed.by_name(key.name).radius == key.radius
