"""Property-based test: the Theorem-4 reduction agrees with circuit evaluation."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chase import chase
from repro.datasets.circuits import (
    encode_circuit,
    expected_identified_pairs,
    random_monotone_circuit,
)
from repro.matching import match_entities


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_inputs=st.integers(min_value=1, max_value=4),
    num_gates=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=25, deadline=None)
def test_chase_computes_circuit_values(seed, num_inputs, num_gates):
    circuit = random_monotone_circuit(num_inputs=num_inputs, num_gates=num_gates, seed=seed)
    graph, keys = encode_circuit(circuit)
    assert chase(graph, keys).pairs() == expected_identified_pairs(circuit)


@given(seed=st.integers(min_value=0, max_value=1_000))
@settings(max_examples=8, deadline=None)
def test_parallel_algorithms_compute_circuit_values(seed):
    circuit = random_monotone_circuit(num_inputs=3, num_gates=4, seed=seed)
    graph, keys = encode_circuit(circuit)
    expected = expected_identified_pairs(circuit)
    for algorithm in ("EMOptMR", "EMOptVC"):
        assert match_entities(graph, keys, algorithm=algorithm).pairs() == expected
