"""Property-based test: the VF2 matcher agrees with brute force on small graphs."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import Graph
from repro.isomorphism import brute_force_isomorphisms, subgraph_isomorphisms


@st.composite
def small_graph(draw, prefix: str, max_nodes: int):
    graph = Graph()
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    types = ["red", "blue"]
    for index in range(num_nodes):
        graph.add_entity(f"{prefix}{index}", draw(st.sampled_from(types)))
    num_edges = draw(st.integers(min_value=0, max_value=max_nodes * 2))
    for _ in range(num_edges):
        source = f"{prefix}{draw(st.integers(min_value=0, max_value=num_nodes - 1))}"
        target = f"{prefix}{draw(st.integers(min_value=0, max_value=num_nodes - 1))}"
        if source != target:
            graph.add_edge(source, target and source and "to", target)
    return graph


@given(pattern=small_graph("p", 3), target=small_graph("t", 4))
@settings(max_examples=50, deadline=None)
def test_vf2_matches_brute_force_count(pattern, target):
    fast = subgraph_isomorphisms(pattern, target)
    slow = brute_force_isomorphisms(pattern, target)
    assert len(fast) == len(slow)
    # every reported mapping is a genuine embedding
    for mapping in fast:
        for triple in pattern.triples():
            assert target.has_triple(
                mapping[triple.subject], triple.predicate, mapping[triple.obj]
            )
