"""Property tests of the O(delta) pipeline: patch ≡ rebuild, bit for bit.

Three layers of the delta machinery carry a *bit-identity* contract:

* :meth:`GraphSnapshot.patched` must produce the same interning tables and
  CSR arrays as a from-scratch :meth:`GraphSnapshot.build`, for arbitrary
  journalled mutation sequences (including retypes and removals, which
  reshuffle the canonical entity order);
* the incremental AdHash accumulator behind ``Graph.content_fingerprint``
  must always equal the one-pass :func:`graph_fingerprint` recompute — and
  the fingerprint of any snapshot compiled from the graph;
* every backend riding the patched-snapshot path must produce the same Eq
  as the sequential chase on the mutated graph.

The last class of tests is the blocked-planner acceptance fuzz: on blocked
incremental runs, ``pairs_rechecked`` stays within an independently computed
affected-closure bound (full d-neighbourhood staleness, closed under the
dependency map, plus dropped-class members) — the support-level planner may
only ever *tighten* that set, never exceed it.
"""

from __future__ import annotations

import itertools
import pathlib
import random
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ALGORITHMS, MatchSession
from repro.core.chase import candidate_pairs, chase
from repro.core.fingerprint import graph_fingerprint
from repro.core.neighborhood import NeighborhoodIndex
from repro.matching.incremental import (
    DependencyWorklist,
    extra_dependency_edges,
    touched_entity_nodes,
)
from repro.storage.snapshot import GraphSnapshot

# reuse the PR 5 mutation fuzzer verbatim — the whole point is that the
# delta layers survive the exact mutation vocabulary the journal supports
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "matching"))
from test_incremental_equivalence import apply_random_mutation, fuzz_dataset  # noqa: E402

#: every pickled-core slot of a snapshot; the patch path must reproduce each
#: one exactly (``_unchanged_tables`` provenance and lazy decode caches are
#: deliberately excluded — they are never pickled and never read by equality)
_SNAPSHOT_SLOTS = (
    "version",
    "_node_of",
    "_id_of",
    "_num_entities",
    "_etype_of",
    "_type_ranges",
    "_pred_of",
    "_pred_ids",
    "_fwd_offsets",
    "_fwd_preds",
    "_fwd_objs",
    "_bwd_offsets",
    "_bwd_preds",
    "_bwd_subjs",
    "_und_offsets",
    "_und_targets",
    "_vindex_offsets",
    "_vindex_literals",
    "_vindex_subjects",
    "_num_triples",
)


def assert_snapshots_bit_identical(patched: GraphSnapshot, rebuilt: GraphSnapshot) -> None:
    for slot in _SNAPSHOT_SLOTS:
        assert getattr(patched, slot) == getattr(rebuilt, slot), slot


# --------------------------------------------------------------------------- #
# patched snapshots ≡ rebuilt snapshots
# --------------------------------------------------------------------------- #


@given(
    seed=st.integers(min_value=0, max_value=100_000),
    rounds=st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=3),
)
@settings(max_examples=20, deadline=None)
def test_patched_snapshot_bit_identical_to_rebuild(seed, rounds):
    """patched(journal window) == build(graph), slot by slot, array by array."""
    dataset = fuzz_dataset(seed)
    graph = dataset.graph
    snapshot = GraphSnapshot.build(graph)
    rng = random.Random(seed)
    for count in rounds:
        base_version = snapshot.version
        for _ in range(count):
            apply_random_mutation(graph, rng)
        touched = graph.touched_since(base_version)
        assert touched is not None
        snapshot = snapshot.patched(graph, touched)
        assert_snapshots_bit_identical(snapshot, GraphSnapshot.build(graph))


@given(seed=st.integers(min_value=0, max_value=100_000))
@settings(max_examples=10, deadline=None)
def test_patched_snapshot_survives_retype_and_removal(seed):
    """The mutations that reshuffle canonical interning order, specifically."""
    dataset = fuzz_dataset(seed)
    graph = dataset.graph
    snapshot = GraphSnapshot.build(graph)
    rng = random.Random(seed)
    entities = sorted(graph.entity_ids())
    types = sorted(graph.types())

    base = snapshot.version
    victim = rng.choice(entities)
    graph.retype_entity(victim, rng.choice(types))
    for triple in sorted(graph.out_triples(rng.choice(entities)), key=repr)[:2]:
        graph.remove_triple(triple)
    snapshot = snapshot.patched(graph, graph.touched_since(base))
    assert_snapshots_bit_identical(snapshot, GraphSnapshot.build(graph))

    # a patched snapshot is itself a valid patch base
    base = snapshot.version
    graph.add_entity(f"patch_{seed % 97}", rng.choice(types))
    snapshot = snapshot.patched(graph, graph.touched_since(base))
    assert_snapshots_bit_identical(snapshot, GraphSnapshot.build(graph))


# --------------------------------------------------------------------------- #
# incremental fingerprint ≡ recompute
# --------------------------------------------------------------------------- #


@given(
    seed=st.integers(min_value=0, max_value=100_000),
    count=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=20, deadline=None)
def test_incremental_fingerprint_equals_recompute(seed, count):
    """The O(1)-per-mutation accumulator never drifts from the full sum."""
    dataset = fuzz_dataset(seed)
    graph = dataset.graph
    rng = random.Random(seed)
    assert graph.content_fingerprint() == graph_fingerprint(graph)
    for _ in range(count):
        apply_random_mutation(graph, rng)
        assert graph.content_fingerprint() == graph_fingerprint(graph)
    # the snapshot compiled from the graph sums to the same digest — the
    # invariant the store's content addressing depends on
    assert graph_fingerprint(GraphSnapshot.build(graph)) == graph.content_fingerprint()


def test_fingerprint_is_order_invariant_and_reversible():
    """Same content, different mutation order: same accumulator value."""
    entities = sorted(fuzz_dataset(7).graph.entity_ids())
    first, last = entities[0], entities[-1]

    one = fuzz_dataset(7).graph
    one.add_edge(first, "fp_a", last)
    one.add_edge(last, "fp_b", first)

    other = fuzz_dataset(7).graph
    other.add_edge(last, "fp_b", first)
    other.add_edge(first, "fp_a", last)
    # a detour through extra content, fully reverted, must cancel exactly
    before = other.content_fingerprint()
    other.add_edge(first, "fp_tmp", last)
    assert other.content_fingerprint() != before
    detour = [t for t in other.out_triples(first) if t.predicate == "fp_tmp"]
    other.remove_triple(detour[0])

    assert one.content_fingerprint() == other.content_fingerprint() == before


# --------------------------------------------------------------------------- #
# six backends, bit-identical on the patched-snapshot path
# --------------------------------------------------------------------------- #


@given(seed=st.integers(min_value=0, max_value=100_000))
@settings(max_examples=6, deadline=None)
def test_all_backends_identical_on_patched_snapshot_path(seed):
    """Every backend rides a *patched* snapshot and still equals the chase."""
    dataset = fuzz_dataset(seed)
    graph, keys = dataset.graph, dataset.keys
    sessions = {
        backend: MatchSession(graph).with_keys(keys).using(backend)
        for backend in ALGORITHMS
    }
    for session in sessions.values():
        session.run()
    rng = random.Random(seed)
    for _ in range(2):
        apply_random_mutation(graph, rng)
    reference = chase(graph, keys).pairs()
    for backend, session in sessions.items():
        result = session.rerun()
        assert result.eq.pairs() == reference, backend
        info = session.cache_info()
        # a delta that implicates no candidate pair legitimately reuses the
        # previous result without ever refreshing the snapshot
        if session.last_delta().mode != "reused":
            assert info.snapshot_patches >= 1, backend
        assert info.snapshot_builds == 1, backend


# --------------------------------------------------------------------------- #
# blocked planner acceptance: pairs_rechecked within the affected closure
# --------------------------------------------------------------------------- #


def affected_closure_bound(
    *,
    session,
    graph,
    keys,
    touched,
    old_quadratic,
    old_neighborhoods,
    old_supports,
    previous_classes,
    use_supports,
):
    """An independent recomputation of the blocked delta worklist size.

    Marks a blocked candidate pair affected when it is new to the quadratic
    universe or stale under the journal window, closes under the dependency
    map (plus the probed edges of vanished identified pairs), and adds every
    member pair of a previous class touching an implicated entity.

    With ``use_supports=False`` staleness is the classic *d-neighbourhood*
    test for every pair; with ``use_supports=True`` a previously identified
    pair with a recorded pairing support is stale only when the window hit
    the support itself — the affected-*support* closure the planner runs.
    Supports live inside neighbourhoods, so the support bound can only be
    the tighter of the two.
    """
    artifacts = session._artifacts
    flavors = [flavor for flavor in artifacts._candidates if flavor[0] and flavor[2]]
    assert flavors, "blocked run left no filtered blocked candidate flavor"
    candidates = artifacts._candidates[flavors[0]]
    universe = set(candidates.pairs)
    dependents = dict(
        artifacts.dependency_map(
            filtered=True, reduce_neighborhoods=flavors[0][1], blocking="auto"
        )
    )

    previously_identified = {
        pair
        for cls in previous_classes
        for pair in itertools.combinations(sorted(cls), 2)
    }
    vanished = previously_identified - universe
    for prerequisite, extra in extra_dependency_edges(
        graph, keys, candidates, sorted(vanished)
    ).items():
        dependents[prerequisite] = dependents.get(prerequisite, set()) | extra

    stale_entities = {
        entity
        for entity, neighborhood in old_neighborhoods.items()
        if neighborhood & touched
    }
    stale_entities |= touched_entity_nodes(graph, touched)
    stale_entities |= set(old_neighborhoods) & touched

    affected = set()
    for pair in universe:
        if pair not in old_quadratic or pair[0] in touched or pair[1] in touched:
            affected.add(pair)
            continue
        if use_supports and pair in previously_identified:
            support = old_supports.get(pair)
            if support is not None:
                if touched & support[0] or touched & support[1]:
                    affected.add(pair)
                continue
        if pair[0] in stale_entities or pair[1] in stale_entities:
            affected.add(pair)
    affected |= vanished
    closed = DependencyWorklist(dependents).close(affected)

    implicated = {entity for pair in closed for entity in pair}
    implicated |= touched_entity_nodes(graph, touched)
    implicated |= set(old_neighborhoods) & touched
    dropped = set()
    for cls in previous_classes:
        if implicated & cls:
            dropped.update(itertools.combinations(sorted(cls), 2))
    return len({pair for pair in universe if pair in closed or pair in dropped})


@given(
    seed=st.integers(min_value=0, max_value=100_000),
    rounds=st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=3),
)
@settings(max_examples=15, deadline=None)
def test_blocked_incremental_rechecks_within_affected_closure(seed, rounds):
    """Blocked delta runs: exact Eq, and a worklist no larger than the bound."""
    dataset = fuzz_dataset(seed)
    graph, keys = dataset.graph, dataset.keys
    session = MatchSession(graph).with_keys(keys).using("EMOptVC", blocking="auto")
    result = session.run()
    rng = random.Random(seed)
    for count in rounds:
        base_version = graph.version
        old_quadratic = set(candidate_pairs(graph, keys))
        index = NeighborhoodIndex(graph, keys)
        old_neighborhoods = {
            entity: frozenset(index.nodes(entity))
            for entity in sorted(graph.entity_ids())
        }
        old_supports = {
            pair: (frozenset(sides[0]), frozenset(sides[1]))
            for cached in session._artifacts._candidates.values()
            for pair, sides in (cached.pair_supports or {}).items()
        }
        previous_classes = [frozenset(cls) for cls in result.eq.nontrivial_classes()]

        for _ in range(count):
            apply_random_mutation(graph, rng)
        touched = graph.touched_since(base_version)
        assert touched is not None

        result = session.rerun()
        assert result.eq.pairs() == chase(graph, keys).pairs(), session.last_delta()
        delta = session.last_delta()
        assert delta.mode in ("incremental", "reused"), delta
        bounds = {
            use_supports: affected_closure_bound(
                session=session,
                graph=graph,
                keys=keys,
                touched=touched,
                old_quadratic=old_quadratic,
                old_neighborhoods=old_neighborhoods,
                old_supports=old_supports,
                previous_classes=previous_classes,
                use_supports=use_supports,
            )
            for use_supports in (True, False)
        }
        # rechecked ≤ support closure ≤ neighbourhood closure: the planner
        # runs the support-level plan, never the coarser neighbourhood one
        assert delta.pairs_rechecked <= bounds[True] <= bounds[False], (delta, bounds)


def test_support_miss_inside_neighbourhood_rechecks_nothing():
    """A touch inside a d-neighbourhood but outside every support is free.

    This is the observable difference between the support-level planner and
    the old d-neighbourhood planner: find an entity that sits inside some
    identified pair's neighbourhood ball yet outside every recorded pairing
    support (and outside every unidentified pair's ball, which always gets
    the full-neighbourhood test), touch it, and verify the worklist is
    empty where the neighbourhood test would have rechecked pairs.
    """
    from repro.core.triples import is_entity_ref

    witness = None
    for seed in range(40):
        dataset = fuzz_dataset(seed)
        graph, keys = dataset.graph, dataset.keys
        session = MatchSession(graph).with_keys(keys).using("EMOptVC", blocking="auto")
        result = session.run()
        artifacts = session._artifacts
        flavors = [f for f in artifacts._candidates if f[0] and f[2]]
        candidates = artifacts._candidates[flavors[0]]
        universe = set(candidates.pairs)
        identified = {p for p in universe if result.eq.identified(*p)}
        unidentified = universe - identified
        if not identified:
            continue
        index = NeighborhoodIndex(graph, keys)
        neighborhoods = {
            entity: frozenset(index.nodes(entity))
            for entity in sorted(graph.entity_ids())
        }
        support_nodes = set()
        for sides in (candidates.pair_supports or {}).values():
            support_nodes |= sides[0] | sides[1]
        protected = set(support_nodes)
        for pair in unidentified:
            protected |= neighborhoods[pair[0]] | neighborhoods[pair[1]]
        protected |= {entity for pair in universe for entity in pair}
        protected |= {e for cls in result.eq.nontrivial_classes() for e in cls}
        stale_if_neighbourhood = set()
        for pair in identified:
            for node in neighborhoods[pair[0]] | neighborhoods[pair[1]]:
                if is_entity_ref(node) and node in neighborhoods and node not in protected:
                    stale_if_neighbourhood.add(node)
        if stale_if_neighbourhood:
            witness = sorted(stale_if_neighbourhood)[0]
            break
    assert witness is not None, "no fuzz seed produced a support-free witness node"

    graph.add_value(witness, "support_probe", "probe_value")
    rerun = session.rerun()
    delta = session.last_delta()
    assert delta.mode in ("incremental", "reused"), delta
    assert delta.pairs_rechecked == 0, delta
    assert delta.dropped_classes == 0, delta
    assert rerun.eq.pairs() == chase(graph, keys).pairs()


def test_untouched_delta_rechecks_nothing_on_blocked_runs():
    """A mutation far outside every support set yields an O(0) recheck."""
    dataset = fuzz_dataset(3)
    graph, keys = dataset.graph, dataset.keys
    session = MatchSession(graph).with_keys(keys).using("EMOptVC", blocking="auto")
    session.run()
    graph.add_entity("isolated_entity", "isolated_type")
    result = session.rerun()
    delta = session.last_delta()
    assert delta.mode in ("incremental", "reused")
    assert delta.pairs_rechecked == 0, delta
    assert result.eq.pairs() == chase(graph, keys).pairs()


# --------------------------------------------------------------------------- #
# key-set deltas: with_keys invalidation ≡ fresh chase under the new keys
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", ["chase", "EMOptVC"])
@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None)
def test_rekeyed_session_equals_fresh_chase(backend, seed):
    """with_keys(delta) keeps the snapshot and still matches a cold run."""
    from repro.core.key import KeySet

    dataset = fuzz_dataset(seed)
    graph, keys = dataset.graph, dataset.keys
    session = MatchSession(graph).with_keys(keys).using(backend)
    session.run()
    rng = random.Random(seed)
    all_keys = list(keys)
    for _ in range(2):
        subset = [key for key in all_keys if rng.random() < 0.8] or all_keys[:1]
        new_keys = KeySet(subset)
        result = session.with_keys(new_keys).run()
        assert result.eq.pairs() == chase(graph, new_keys).pairs()
        apply_random_mutation(graph, rng)
        assert session.rerun().eq.pairs() == chase(graph, new_keys).pairs()
    info = session.cache_info()
    assert info.snapshot_builds == 1
