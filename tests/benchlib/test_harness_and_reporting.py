"""Tests of the experiment harness and the report formatting."""

from __future__ import annotations

import pytest

from repro.benchlib import (
    candidate_table,
    chain_sweep,
    figure_table,
    format_table,
    processors_sweep,
    radius_sweep,
    result_summary_table,
    run_experiment,
    scale_sweep,
    speedup_summary,
)
from repro.datasets.music import music_dataset
from repro.datasets.synthetic import synthetic_dataset
from repro.matching import match_entities


def music_factory(**_kwargs):
    return music_dataset()


def synthetic_factory(**kwargs):
    dataset = synthetic_dataset(
        num_keys=4, entities_per_type=4, **{k: v for k, v in kwargs.items()}
    )
    return dataset.graph, dataset.keys


class TestSweepSpecs:
    def test_spec_constructors(self):
        spec = processors_sweep("fig8a", "google", music_factory, processors=(2, 4))
        assert spec.parameter == "p" and spec.values == (2, 4)
        assert "fig8a" in spec.describe()
        assert scale_sweep("fig8b", "google", music_factory).parameter == "scale"
        assert chain_sweep("fig8c", "google", music_factory).parameter == "chain_length"
        assert radius_sweep("fig8d", "google", music_factory).parameter == "radius"


class TestRunExperiment:
    def test_processors_sweep_on_music(self):
        spec = processors_sweep(
            "test", "music", music_factory, processors=(2, 8), algorithms=("EMMR", "EMVC")
        )
        result = run_experiment(spec)
        assert len(result.points) == 2
        assert result.consistent_pairs()
        assert result.speedup("EMMR") >= 1.0
        series = result.series("EMVC")
        assert [value for value, _ in series] == [2, 8]

    def test_chain_sweep_on_synthetic(self):
        spec = chain_sweep(
            "test-c", "synthetic", synthetic_factory, chains=(1, 2), algorithms=("EMOptVC",),
            radius=1, seed=3,
        )
        result = run_experiment(spec)
        assert len(result.points) == 2
        assert result.consistent_pairs()


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_figure_table_and_speedup(self):
        spec = processors_sweep(
            "fig-test", "music", music_factory, processors=(2, 4), algorithms=("EMVC",)
        )
        result = run_experiment(spec)
        table = figure_table(result)
        assert "EMVC" in table and "fig-test" in table
        assert "x" in speedup_summary(result)

    def test_candidate_table(self):
        text = candidate_table(
            {"Google": {"candidates_vc": 10, "candidates_mr": 7, "confirmed": 3}}
        )
        assert "Google" in text and "Confirmed" in text

    def test_result_summary_table(self):
        graph, keys = music_dataset()
        results = {
            name: match_entities(graph, keys, algorithm=name) for name in ("EMMR", "EMOptVC")
        }
        text = result_summary_table(results, title="music")
        assert "EMMR" in text and "EMOptVC" in text
