"""Tests of the on-disk snapshot store: format, corruption, cache, payloads."""

from __future__ import annotations

import pickle

import pytest

from repro.core.graph import Graph
from repro.core.triples import Literal, Triple
from repro.datasets.music import music_dataset
from repro.exceptions import (
    StoreError,
    StoreFormatError,
    StoreMissError,
    StoreStaleError,
    StoreVersionError,
)
from repro.runtime import AttachByPath, ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.storage import (
    FORMAT_VERSION,
    GraphSnapshot,
    SnapshotStore,
    graph_fingerprint,
    read_snapshot,
    snapshot_info,
    verify_snapshot,
    write_snapshot,
)


@pytest.fixture
def dataset():
    return music_dataset()


@pytest.fixture
def graph(dataset):
    return dataset[0]


@pytest.fixture
def store(tmp_path):
    return SnapshotStore(tmp_path / "snaps")


@pytest.fixture
def stored(graph, store):
    """``(snapshot, path)``: a built snapshot saved into the store."""
    snapshot = GraphSnapshot.build(graph)
    path = store.save(snapshot, graph=graph)
    return snapshot, path


def exotic_graph() -> Graph:
    """A graph exercising every literal encoding (str/int/float/bool/None/pickle)."""
    g = Graph()
    g.add_entity("e1", "thing")
    g.add_entity("e2", "thing")
    g.add_edge("e1", "linked_to", "e2")
    g.add_value("e1", "name", "ünïcode – name")
    g.add_value("e1", "count", 42)
    g.add_value("e1", "ratio", 2.5)
    g.add_value("e1", "negative", -1.5e300)
    g.add_value("e1", "flag", True)
    g.add_value("e2", "flag", False)
    g.add_value("e2", "missing", None)
    g.add_value("e2", "pair", (1, ("two", False)))  # nested tuple
    g.add_value("e2", "tags", frozenset({"alpha", "beta", "gamma"}))  # unordered
    return g


def assert_same_surface(left: GraphSnapshot, right: GraphSnapshot) -> None:
    """The full read surface of both snapshots must agree."""
    assert left.version == right.version
    assert left._node_of == right._node_of
    assert left._type_ranges == right._type_ranges
    assert left._pred_of == right._pred_of
    assert set(left.triples()) == set(right.triples())
    assert left.value_nodes() == right.value_nodes()
    for index in range(left.num_nodes):
        assert left.repr_rank(index) == right.repr_rank(index)
    for entity in left.entity_ids():
        assert left.entity_type(entity) == right.entity_type(entity)
        assert left.neighbors(entity) == right.neighbors(entity)
        assert left.out_triples(entity) == right.out_triples(entity)
        root = left.id_of(entity)
        assert left.neighborhood_ids(root, 2) == right.neighborhood_ids(root, 2)


class TestFormatRoundTrip:
    def test_round_trip_preserves_the_read_surface(self, graph, stored, store):
        snapshot, _path = stored
        loaded = store.load(graph)
        assert_same_surface(snapshot, loaded)

    def test_round_trip_of_every_literal_kind(self, tmp_path):
        g = exotic_graph()
        snapshot = GraphSnapshot.build(g)
        path = write_snapshot(
            snapshot, tmp_path / "exotic.snap", fingerprint=graph_fingerprint(g)
        )
        loaded = read_snapshot(path)
        assert_same_surface(snapshot, loaded)
        assert Literal((1, ("two", False))) in loaded.value_nodes()
        assert loaded.has_triple("e2", "tags", Literal(frozenset({"alpha", "beta", "gamma"})))
        assert loaded.has_triple("e1", "negative", Literal(-1.5e300))

    def test_serialization_is_deterministic(self, graph, tmp_path):
        snapshot = GraphSnapshot.build(graph)
        fingerprint = graph_fingerprint(graph)
        a = write_snapshot(snapshot, tmp_path / "a.snap", fingerprint=fingerprint)
        b = write_snapshot(snapshot, tmp_path / "b.snap", fingerprint=fingerprint)
        assert a.read_bytes() == b.read_bytes()

    def test_mmap_load_exposes_views_not_copies(self, graph, stored, store):
        loaded = store.load(graph)
        assert isinstance(loaded._fwd_offsets, memoryview)
        assert isinstance(loaded._und_targets, memoryview)

    def test_snapshot_info_reads_only_the_header(self, graph, stored):
        _snapshot, path = stored
        info = snapshot_info(path)
        assert info["format_version"] == FORMAT_VERSION
        assert info["fingerprint"] == graph_fingerprint(graph)
        assert info["graph_version"] == graph.version
        assert info["num_entities"] == graph.num_entities
        assert info["num_triples"] == graph.num_triples

    def test_verify_accepts_a_good_file(self, graph, stored):
        _snapshot, path = stored
        info = verify_snapshot(path, graph)
        assert info["fingerprint"] == graph_fingerprint(graph)


class TestFingerprint:
    def test_insertion_order_does_not_matter(self):
        g1 = Graph()
        g1.add_entity("a", "t")
        g1.add_entity("b", "t")
        g1.add_edge("a", "p", "b")
        g1.add_value("a", "v", 1)
        g2 = Graph()
        g2.add_entity("b", "t")
        g2.add_entity("a", "t")
        g2.add_value("a", "v", 1)
        g2.add_edge("a", "p", "b")
        assert graph_fingerprint(g1) == graph_fingerprint(g2)

    def test_graph_and_snapshot_fingerprints_agree(self, graph):
        assert graph_fingerprint(graph) == graph_fingerprint(GraphSnapshot.build(graph))

    def test_content_changes_change_the_fingerprint(self, graph):
        before = graph_fingerprint(graph)
        graph.add_value("alb1", "bonus_of", "extra")
        assert graph_fingerprint(graph) != before

    def test_fingerprint_is_stable_across_hash_seeds(self):
        """Hash randomization must not leak into the fingerprint.

        Frozenset literals iterate in hash order, which varies per process;
        the canonical fingerprint encoding sorts unordered containers, so
        two processes with different PYTHONHASHSEEDs must agree.
        """
        import os
        import subprocess
        import sys

        script = (
            "from tests.storage.test_store import exotic_graph\n"
            "from repro.storage import graph_fingerprint\n"
            "print(graph_fingerprint(exotic_graph()))\n"
        )
        prints = []
        for seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
            prints.append(
                subprocess.run(
                    [sys.executable, "-c", script],
                    capture_output=True, text=True, check=True, env=env,
                    cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
                ).stdout.strip()
            )
        assert prints[0] == prints[1]
        assert prints[0] == graph_fingerprint(exotic_graph())


class TestAttachByPathPickling:
    def test_store_backed_snapshots_pickle_as_path_stubs(self, graph, stored, store):
        snapshot, _path = stored
        # both the saved original and a store load are path-backed
        assert snapshot.store_path is not None
        loaded = store.load(graph)
        blob = pickle.dumps(loaded)
        assert len(blob) < 1024
        assert_same_surface(loaded, pickle.loads(blob))

    def test_saving_marks_the_built_snapshot(self, graph, stored):
        snapshot, path = stored
        assert snapshot.store_path == str(path)
        assert snapshot.store_fingerprint == graph_fingerprint(graph)
        assert len(pickle.dumps(snapshot)) < 1024

    def test_unstored_snapshots_still_pickle_as_arrays(self, graph):
        snapshot = GraphSnapshot.build(graph)
        assert snapshot.store_path is None
        restored = pickle.loads(pickle.dumps(snapshot))
        assert set(restored.triples()) == set(snapshot.triples())
        assert restored.store_path is None

    def test_detached_load_pickles_as_arrays_and_survives_deletion(self, graph, stored):
        _snapshot, path = stored
        detached = read_snapshot(path, attach=False)
        blob = pickle.dumps(detached)  # materializes the mmap views
        path.unlink()
        restored = pickle.loads(blob)
        assert set(restored.triples()) == set(_snapshot.triples())

    def test_attached_pickle_fails_loudly_when_the_file_vanishes(self, graph, stored, store):
        loaded = store.load(graph)
        blob = pickle.dumps(loaded)
        store.path_for(graph_fingerprint(graph)).unlink()
        with pytest.raises(StoreError):
            pickle.loads(blob)


class TestCorruption:
    def test_missing_file_is_a_typed_miss(self, graph, store):
        with pytest.raises(StoreMissError):
            store.load(graph)

    def test_truncated_preamble(self, graph, stored):
        _snapshot, path = stored
        path.write_bytes(path.read_bytes()[:7])
        with pytest.raises(StoreFormatError):
            read_snapshot(path)

    def test_truncated_segment_area(self, graph, stored):
        _snapshot, path = stored
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(StoreFormatError):
            read_snapshot(path)

    def test_bad_magic(self, graph, stored):
        _snapshot, path = stored
        raw = bytearray(path.read_bytes())
        raw[:8] = b"NOTASNAP"
        path.write_bytes(bytes(raw))
        with pytest.raises(StoreFormatError):
            read_snapshot(path)

    def test_format_version_mismatch(self, graph, stored):
        _snapshot, path = stored
        raw = bytearray(path.read_bytes())
        raw[8] = FORMAT_VERSION + 1
        path.write_bytes(bytes(raw))
        with pytest.raises(StoreVersionError):
            read_snapshot(path)

    def test_pre_vindex_v1_file_raises_version_error(self, graph, stored):
        """A file written by the format-1 layout (no vindex segments) is
        rejected with a clean :class:`StoreVersionError`, not a decode crash."""
        _snapshot, path = stored
        raw = bytearray(path.read_bytes())
        raw[8] = 1
        path.write_bytes(bytes(raw))
        with pytest.raises(StoreVersionError) as excinfo:
            read_snapshot(path)
        message = str(excinfo.value)
        assert "1" in message and str(FORMAT_VERSION) in message

    def test_store_get_or_build_recovers_from_a_v1_file(self, graph, store, stored):
        snapshot, path = stored
        raw = bytearray(path.read_bytes())
        raw[8] = 1
        path.write_bytes(bytes(raw))
        rebuilt, loaded = store.get_or_build(graph, lambda: GraphSnapshot.build(graph))
        assert not loaded  # the stale v1 entry forced a clean rebuild
        assert rebuilt.num_triples == snapshot.num_triples
        # the rebuild was written back at the current version: next load hits
        again = store.load(graph)
        assert again.value_postings(0) is not None

    def test_fingerprint_mismatch_is_stale(self, graph, stored):
        _snapshot, path = stored
        with pytest.raises(StoreStaleError):
            read_snapshot(path, expect_fingerprint="0" * 64)

    def test_stale_graph_version(self, graph, stored):
        _snapshot, path = stored
        with pytest.raises(StoreStaleError):
            read_snapshot(path, expect_graph_version=graph.version + 1)

    def test_poisoned_store_entry_is_stale(self, graph, stored, store):
        # a file stored under one fingerprint but holding another graph
        _snapshot, path = stored
        graph.add_value("alb1", "bonus_of", "extra")
        poisoned = store.path_for(graph_fingerprint(graph))
        poisoned.write_bytes(path.read_bytes())
        with pytest.raises(StoreStaleError):
            store.load(graph)

    def test_verify_catches_payload_corruption(self, graph, stored):
        _snapshot, path = stored
        info = snapshot_info(path)
        offset, length = info["segments"]["fwd_objs"]
        assert length > 0
        raw = bytearray(path.read_bytes())
        raw[info["data_start"] + offset] ^= 0xFF  # flip a bit inside a segment
        path.write_bytes(bytes(raw))
        with pytest.raises(StoreFormatError):
            verify_snapshot(path, graph)

    def test_missing_header_field_is_a_typed_format_error(self, graph, stored):
        """A parseable JSON header lacking required fields must not KeyError."""
        import json
        import struct

        _snapshot, path = stored
        raw = path.read_bytes()
        magic, version, reserved, header_len = struct.unpack_from("<8sHHI", raw)
        header = json.loads(raw[16 : 16 + header_len])
        del header["num_predicates"]
        patched = json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
        # same-length padding keeps the offsets valid; spaces are legal JSON
        patched += b" " * (header_len - len(patched))
        path.write_bytes(raw[:12] + struct.pack("<I", len(patched)) + patched + raw[16 + header_len :])
        with pytest.raises(StoreFormatError):
            read_snapshot(path)
        with pytest.raises(StoreFormatError):
            snapshot_info(path)

    def test_all_store_errors_share_the_typed_base(self):
        for cls in (StoreFormatError, StoreVersionError, StoreStaleError, StoreMissError):
            assert issubclass(cls, StoreError)


class TestSnapshotStore:
    def test_save_then_load_by_fingerprint(self, graph, stored, store):
        _snapshot, path = stored
        fingerprint = graph_fingerprint(graph)
        assert store.contains(fingerprint)
        assert fingerprint in store
        assert store.fingerprints() == [fingerprint]
        assert len(store) == 1
        loaded = store.load_fingerprint(fingerprint)
        assert set(loaded.triples()) == set(_snapshot.triples())

    def test_one_store_caches_many_graph_versions(self, graph, store):
        store.save(GraphSnapshot.build(graph), graph=graph)
        graph.add_value("alb1", "bonus_of", "extra")
        store.save(GraphSnapshot.build(graph), graph=graph)
        assert len(store) == 2
        assert store.load(graph).has_triple("alb1", "bonus_of", Literal("extra"))


class TestWorkerCacheShipCost:
    def test_store_backed_snapshot_shrinks_the_mr_worker_payload(self, graph, stored, store):
        """The MR Haloop cache ships a path stub, not arrays, under a store."""
        from repro.mapreduce.haloop_cache import WorkerCache

        built_cache, stored_cache = WorkerCache(2), WorkerCache(2)
        built_cache.put("snapshot", GraphSnapshot.build(graph), records=0)
        stored_cache.put("snapshot", store.load(graph), records=0)
        assert stored_cache.shipped_bytes() < 1024
        assert stored_cache.shipped_bytes() < built_cache.shipped_bytes() / 5


def count_triples(shared, lo, hi):
    """Executor task: count triples whose subject id falls in [lo, hi)."""
    total = 0
    for sid in range(lo, min(hi, shared.num_entities)):
        total += len(shared.out_triples(shared.node_at(sid)))
    return total


class TestExecutorPayloads:
    def test_process_executor_reuses_pickled_payload_across_pools(self):
        payload = {"big": list(range(1000))}
        with ProcessExecutor(2) as executor:
            first = executor.run_tasks(lambda_free_len, [(1,), (2,)], shared=payload)
            executor.close()  # forces a pool re-create on the next call
            second = executor.run_tasks(lambda_free_len, [(3,),], shared=payload)
            assert executor.payload_pickles == 1
            assert executor.payload_reuses >= 1
        assert first == [1001, 1002]
        assert second == [1003]

    def test_changed_payload_is_repickled(self):
        with ProcessExecutor(2) as executor:
            executor.run_tasks(lambda_free_len, [(1,)], shared={"big": [1]})
            executor.run_tasks(lambda_free_len, [(1,)], shared={"big": [1, 2]})
            assert executor.payload_pickles == 2

    @pytest.mark.parametrize("factory", [SerialExecutor, ThreadExecutor, ProcessExecutor])
    def test_attach_by_path_shared_payload(self, factory, graph, stored):
        _snapshot, path = stored
        batches = [(0, 5), (5, 10), (0, graph.num_entities)]
        expected = SerialExecutor().run_tasks(count_triples, batches, shared=_snapshot)
        with factory(2) as executor:
            results = executor.run_tasks(
                count_triples, batches, shared=AttachByPath(path)
            )
        assert results == expected
        assert expected[-1] == graph.num_triples


def lambda_free_len(shared, extra):
    """Executor task: size of the shared payload's list plus *extra*."""
    return len(shared["big"]) + extra
