"""The GraphSnapshot contract: round-trip fidelity, interning, pickling.

The hypothesis round-trip property drives randomly shaped graphs through
``GraphSnapshot.build`` and asserts the snapshot is an exact read view of
the source ``Graph``: entities, triples, type buckets, in/out adjacency and
undirected neighbourhoods all identical.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import Graph
from repro.core.neighborhood import NeighborhoodIndex, d_neighborhood_nodes
from repro.core.triples import Literal, Triple
from repro.datasets.music import music_dataset
from repro.datasets.synthetic import synthetic_dataset
from repro.exceptions import UnknownEntityError
from repro.storage import GraphSnapshot, SnapshotNeighborhoodIndex

# --------------------------------------------------------------------- #
# hypothesis graph strategy
# --------------------------------------------------------------------- #

_TYPES = ("album", "artist", "song", "label")
_PREDS = ("name_of", "recorded_by", "signed_to", "track_of")


@st.composite
def graphs(draw) -> Graph:
    """Small random graphs mixing entity edges, value edges and loose nodes."""
    graph = Graph()
    num_entities = draw(st.integers(min_value=1, max_value=12))
    entities = []
    for index in range(num_entities):
        etype = draw(st.sampled_from(_TYPES))
        eid = f"{etype[:2]}{index}"
        graph.add_entity(eid, etype)
        entities.append(eid)
    num_edges = draw(st.integers(min_value=0, max_value=24))
    for _ in range(num_edges):
        subject = draw(st.sampled_from(entities))
        predicate = draw(st.sampled_from(_PREDS))
        if draw(st.booleans()):
            graph.add_edge(subject, predicate, draw(st.sampled_from(entities)))
        else:
            value = draw(
                st.one_of(
                    st.integers(min_value=-5, max_value=5),
                    st.sampled_from(["x", "y", "z"]),
                    st.booleans(),
                )
            )
            graph.add_value(subject, predicate, value)
    return graph


@given(graph=graphs())
@settings(max_examples=60, deadline=None)
def test_snapshot_round_trip_property(graph):
    """GraphSnapshot(graph) <-> Graph: every read answer identical."""
    snapshot = GraphSnapshot.build(graph)

    # entities and type buckets
    assert snapshot.num_entities == graph.num_entities
    assert set(snapshot.entity_ids()) == set(graph.entity_ids())
    assert snapshot.types() == graph.types()
    for etype in graph.types() | {"missing-type"}:
        assert snapshot.entities_of_type(etype) == graph.entities_of_type(etype)
    for entity in graph.entity_ids():
        assert snapshot.has_entity(entity)
        assert snapshot.entity_type(entity) == graph.entity_type(entity)
        assert snapshot.entity(entity) == graph.entity(entity)

    # triples, values and predicates
    assert snapshot.num_triples == graph.num_triples
    assert set(snapshot.triples()) == set(graph.triples())
    assert snapshot.value_nodes() == graph.value_nodes()
    assert snapshot.predicates() == graph.predicates()

    # in/out adjacency and undirected neighbourhoods, node by node
    nodes = list(graph.entity_ids()) + sorted(graph.value_nodes(), key=repr)
    for node in nodes:
        if isinstance(node, str):
            assert snapshot.out_triples(node) == graph.out_triples(node)
            for predicate in graph.predicates():
                assert snapshot.objects(node, predicate) == graph.objects(node, predicate)
        assert snapshot.in_triples(node) == graph.in_triples(node)
        for predicate in graph.predicates():
            assert snapshot.subjects(predicate, node) == graph.subjects(predicate, node)
        assert snapshot.neighbors(node) == graph.neighbors(node)
        assert snapshot.degree(node) == graph.degree(node)

    for triple in graph.triples():
        assert snapshot.has_triple(triple.subject, triple.predicate, triple.obj)
        assert triple in snapshot
    assert not snapshot.has_triple(
        next(iter(graph.entity_ids())), "no-such-predicate", Literal("nope")
    )
    assert snapshot.stats() == graph.stats()


@given(graph=graphs(), radius=st.integers(min_value=0, max_value=3))
@settings(max_examples=40, deadline=None)
def test_snapshot_bfs_matches_dict_bfs(graph, radius):
    """Integer-space d-neighbourhood BFS == the dict-path BFS, any radius."""
    snapshot = GraphSnapshot.build(graph)
    for entity in graph.entity_ids():
        assert snapshot.neighborhood_nodes(entity, radius) == d_neighborhood_nodes(
            graph, entity, radius
        )


def test_type_buckets_are_contiguous_and_sorted():
    graph, _keys = music_dataset()
    snapshot = GraphSnapshot.build(graph)
    seen_ids = set()
    for etype in sorted(graph.types()):
        lo, hi = snapshot.type_range(etype)
        bucket = [snapshot.node_at(i) for i in range(lo, hi)]
        assert bucket == graph.entities_of_type(etype)  # sorted, contiguous
        assert all(snapshot.id_of(eid) == lo + k for k, eid in enumerate(bucket))
        assert seen_ids.isdisjoint(range(lo, hi))
        seen_ids.update(range(lo, hi))
    assert seen_ids == set(range(snapshot.num_entities))
    assert snapshot.type_range("no-such-type") == (0, 0)


def test_snapshot_is_read_only_and_versioned():
    graph, _keys = music_dataset()
    version = graph.version
    snapshot = GraphSnapshot.build(graph)
    assert snapshot.version == version
    assert not hasattr(snapshot, "add_entity")
    assert not hasattr(snapshot, "add_triple")
    with pytest.raises(TypeError):
        GraphSnapshot()
    with pytest.raises(UnknownEntityError):
        snapshot.entity_type("no-such-entity")


def test_snapshot_pickle_round_trip_preserves_reads():
    dataset = synthetic_dataset(
        num_keys=6, chain_length=2, radius=2, entities_per_type=4, seed=11
    )
    graph = dataset.graph
    snapshot = GraphSnapshot.build(graph)
    clone = pickle.loads(pickle.dumps(snapshot))
    assert clone.version == snapshot.version
    assert set(clone.triples()) == set(graph.triples())
    for entity in list(graph.entity_ids())[:20]:
        assert clone.entity_type(entity) == graph.entity_type(entity)
        assert clone.neighbors(entity) == graph.neighbors(entity)


def test_snapshot_pickles_smaller_than_graph():
    """The compact arrays must beat the dict-of-dicts graph payload."""
    dataset = synthetic_dataset(
        num_keys=10, chain_length=2, radius=2, entities_per_type=8, seed=7
    )
    graph_bytes = len(pickle.dumps(dataset.graph))
    snapshot_bytes = len(pickle.dumps(GraphSnapshot.build(dataset.graph)))
    assert snapshot_bytes < graph_bytes


def test_placement_key_interns_entities_pairs_and_passes_unknowns():
    graph, _keys = music_dataset()
    snapshot = GraphSnapshot.build(graph)
    entity = next(iter(graph.entity_ids()))
    assert snapshot.placement_key(entity) == snapshot.id_of(entity)
    other = graph.entities_of_type(graph.entity_type(entity))[-1]
    assert snapshot.placement_key((entity, other)) == (
        snapshot.id_of(entity),
        snapshot.id_of(other),
    )
    assert snapshot.placement_key("not-a-node") == "not-a-node"
    assert snapshot.placement_key(("not-a-node", 17)) == ("not-a-node", 17)


def test_repr_rank_orders_ids_like_sorted_by_repr():
    graph, _keys = music_dataset()
    snapshot = GraphSnapshot.build(graph)
    ids = list(range(snapshot.num_interned_nodes))
    by_rank = sorted(ids, key=snapshot.repr_rank)
    by_repr = sorted(ids, key=lambda i: repr(snapshot.node_at(i)))
    assert by_rank == by_repr


# --------------------------------------------------------------------- #
# SnapshotNeighborhoodIndex
# --------------------------------------------------------------------- #


def test_snapshot_index_matches_dict_index_and_survives_pickle():
    dataset = synthetic_dataset(
        num_keys=8, chain_length=2, radius=2, entities_per_type=5, seed=7
    )
    graph, keys = dataset.graph, dataset.keys
    snapshot = GraphSnapshot.build(graph)
    dict_index = NeighborhoodIndex(graph, keys)
    snap_index = SnapshotNeighborhoodIndex(snapshot, keys)
    entities = list(graph.entity_ids())
    snap_index.precompute(entities)
    for entity in entities:
        assert snap_index.nodes(entity) == dict_index.nodes(entity)
        assert snap_index.radius_for(entity) == dict_index.radius_for(entity)
    assert snap_index.total_size() == dict_index.total_size()
    assert snap_index.max_size() == dict_index.max_size()

    # the pickled form is id-encoded and decodes lazily to the same sets
    clone = pickle.loads(pickle.dumps(snap_index))
    assert clone.cached_entities() == snap_index.cached_entities()
    assert clone.total_size() == snap_index.total_size()
    for entity in entities:
        assert clone.nodes(entity) == dict_index.nodes(entity)


def test_snapshot_index_clone_restrict_semantics():
    dataset = synthetic_dataset(
        num_keys=8, chain_length=2, radius=2, entities_per_type=5, seed=7
    )
    graph, keys = dataset.graph, dataset.keys
    snap_index = SnapshotNeighborhoodIndex(GraphSnapshot.build(graph), keys)
    entity = next(iter(graph.entity_ids()))
    original = set(snap_index.nodes(entity))
    clone = snap_index.clone()
    clone.restrict(entity, set())
    assert clone.nodes(entity) == {entity}  # the entity itself is always kept
    assert snap_index.nodes(entity) == original  # the base cache is untouched


def test_snapshot_index_rebase_keeps_fresh_entries():
    dataset = synthetic_dataset(
        num_keys=8, chain_length=2, radius=2, entities_per_type=5, seed=7
    )
    graph, keys = dataset.graph, dataset.keys
    index = SnapshotNeighborhoodIndex(GraphSnapshot.build(graph), keys)
    entities = list(graph.entity_ids())[:6]
    index.precompute(entities)
    stale, fresh = entities[0], entities[-1]
    fresh_nodes = set(index.nodes(fresh))
    rebased = index.rebased(GraphSnapshot.build(graph), evict=[stale])
    assert stale not in rebased.cached_entities()
    assert fresh in rebased.cached_entities()
    assert rebased.nodes(fresh) == fresh_nodes
