"""Session integration of the storage layer: caching, staleness, identity.

Covers the acceptance bar of the snapshot refactor: one snapshot per
``Graph.version`` shared by every backend run through a session, journal-
driven rebuilds on mutation, and all six registered backends bit-identical
to the sequential chase on the snapshot path.
"""

from __future__ import annotations

from repro.api.registry import ALGORITHMS
from repro.api.session import MatchSession
from repro.core.chase import chase
from repro.datasets.music import music_dataset
from repro.datasets.synthetic import synthetic_dataset
from repro.storage import GraphSnapshot


def _session_dataset():
    return synthetic_dataset(
        num_keys=8, chain_length=2, radius=2, entities_per_type=5, scale=1.0, seed=7
    )


def test_session_builds_one_snapshot_for_all_backends():
    dataset = _session_dataset()
    session = MatchSession(dataset.graph).with_keys(dataset.keys)
    session.run_all(list(ALGORITHMS))
    assert session.cache_info().snapshot_builds == 1


def test_all_six_backends_bit_identical_to_chase_on_snapshot_path():
    """chase(G, Σ) is one set of pairs, snapshot path or dict path."""
    dataset = _session_dataset()
    dict_path = chase(dataset.graph, dataset.keys).pairs()
    assert dict_path  # the seeded dataset must contain duplicates to find
    session = MatchSession(dataset.graph).with_keys(dataset.keys)
    results = session.run_all(list(ALGORITHMS))
    assert set(results) == set(ALGORITHMS)
    for name, result in results.items():
        assert result.pairs() == dict_path, name
    assert session.cache_info().snapshot_builds == 1


def test_chase_snapshot_path_matches_dict_path_exactly():
    graph, keys = music_dataset()
    dict_run = chase(graph, keys)
    snap_run = chase(graph, keys, snapshot=GraphSnapshot.build(graph))
    assert snap_run.pairs() == dict_run.pairs()
    assert snap_run.rounds == dict_run.rounds
    assert snap_run.checks == dict_run.checks
    assert {s.pair for s in snap_run.steps} == {s.pair for s in dict_run.steps}


def test_mutation_bumps_version_and_session_rebuilds_snapshot():
    """Staleness: a mutated Graph invalidates the cached snapshot.

    A small journal delta refreshes the snapshot by *patching* the previous
    one (bit-identical to a recompile, counted in ``snapshot_patches``)
    rather than building from scratch, so ``snapshot_builds`` stays at 1.
    """
    dataset = _session_dataset()
    graph = dataset.graph
    session = MatchSession(graph).with_keys(dataset.keys)
    before = session.run("chase")
    artifacts = session._refresh_artifacts()
    first_snapshot = artifacts.snapshot()
    assert session.cache_info().snapshot_builds == 1
    assert first_snapshot.version == graph.version

    version_before = graph.version
    entity = next(iter(graph.entity_ids()))
    graph.add_value(entity, "staleness_probe", "mutated")
    assert graph.version > version_before

    after = session.run("chase")
    info = session.cache_info()
    assert info.snapshot_builds + info.snapshot_patches == 2
    assert info.snapshot_patches == 1
    assert info.invalidations >= 1
    second_snapshot = session._refresh_artifacts().snapshot()
    assert second_snapshot is not first_snapshot
    assert second_snapshot.version == graph.version
    assert second_snapshot.objects(entity, "staleness_probe")  # sees the mutation
    # the result is recomputed against the mutated graph, not served stale
    assert after.pairs() == chase(graph, dataset.keys).pairs()
    assert before.algorithm == after.algorithm == "chase"


def test_mutation_rebases_fresh_neighborhood_entries():
    dataset = _session_dataset()
    graph = dataset.graph
    session = MatchSession(graph).with_keys(dataset.keys)
    session.run("EMOptMR")
    artifacts = session._refresh_artifacts()
    index_before = artifacts.neighborhood_index()
    cached_before = set(index_before.cached_entities())
    assert cached_before

    entity = next(iter(graph.entity_ids()))
    graph.add_value(entity, "rebase_probe", 42)
    session.run("EMOptMR")

    artifacts = session._refresh_artifacts()
    index_after = artifacts.neighborhood_index()
    assert index_after is not index_before
    assert index_after.snapshot.version == graph.version
    # entities untouched by the mutation kept their cached neighbourhoods
    touched = {entity} | graph.neighbors(entity)
    survivors = {
        e
        for e in cached_before
        if e not in touched and not (touched & index_before.nodes(e))
    }
    assert survivors <= index_after.cached_entities()


def test_phase_timings_record_snapshot_and_candidate_builds():
    dataset = _session_dataset()
    session = MatchSession(dataset.graph).with_keys(dataset.keys)
    assert session.phase_timings() == {}
    session.run("EMOptVC")
    timings = session.phase_timings()
    for phase in ("snapshot_build", "candidates_build", "product_graph_build"):
        assert phase in timings and timings[phase] >= 0.0
