"""Store ↔ session integration: cache counters, fallback, round-trip identity.

The acceptance bar of the persistence layer: a snapshot loaded from the
store must produce *bit-identical* ``EMResult``\\ s to a freshly built one
for every registered backend under the serial, thread and process
executors, and any unreadable/stale store entry must fall back to a clean
in-memory rebuild without failing the run.
"""

from __future__ import annotations

import pytest

from repro.api.registry import ALGORITHMS, get_algorithm
from repro.api.session import MatchSession
from repro.datasets.music import music_dataset
from repro.datasets.synthetic import synthetic_dataset
from repro.exceptions import ConfigError
from repro.storage import FORMAT_VERSION, GraphSnapshot, SnapshotStore, graph_fingerprint


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(
        num_keys=8, chain_length=2, radius=2, entities_per_type=5, scale=1.0, seed=7
    )


@pytest.fixture(scope="module")
def warm_store(tmp_path_factory, dataset):
    """A store already holding the dataset graph's snapshot (a warm restart)."""
    store = SnapshotStore(tmp_path_factory.mktemp("snaps"))
    store.save(GraphSnapshot.build(dataset.graph), graph=dataset.graph)
    return store


def result_key(result):
    """Everything an EMResult pins down besides the measured wall clock."""
    return (
        sorted(result.pairs()),
        result.stats.as_dict(),
        round(result.simulated_seconds, 9),
    )


class TestRoundTripIdentity:
    def test_all_backends_and_executors_match_the_built_snapshot(self, dataset, warm_store):
        """Store-loaded vs built: identical results, six backends, 3 executors."""
        built = MatchSession(dataset.graph).with_keys(dataset.keys)
        loaded = MatchSession(
            dataset.graph, snapshot_store=warm_store
        ).with_keys(dataset.keys)
        for name in ALGORITHMS:
            executors = (
                (None, "serial", "thread", "process")
                if "executors" in get_algorithm(name).capabilities
                else (None,)
            )
            for kind in executors:
                workers = None if kind is None else 2
                expected = built.run(name, processors=4, executor=kind, workers=workers)
                actual = loaded.run(name, processors=4, executor=kind, workers=workers)
                assert result_key(actual) == result_key(expected), (name, kind)
        info = loaded.cache_info()
        assert info.store_hits == 1
        assert info.store_misses == 0
        assert info.snapshot_builds == 0  # the whole point: zero-rebuild cold start

    def test_store_write_back_then_warm_restart(self, dataset, tmp_path):
        cold = MatchSession(dataset.graph, snapshot_store=tmp_path).with_keys(dataset.keys)
        cold_result = cold.run("EMOptVC")
        assert cold.cache_info().store_misses == 1
        assert cold.cache_info().snapshot_builds == 1
        warm = MatchSession(dataset.graph, snapshot_store=tmp_path).with_keys(dataset.keys)
        warm_result = warm.run("EMOptVC")
        assert warm.cache_info().store_hits == 1
        assert warm.cache_info().snapshot_builds == 0
        assert result_key(warm_result) == result_key(cold_result)


class TestSessionFallback:
    @pytest.mark.parametrize(
        "corruption", ["truncate", "magic", "format_version", "old_format_version"]
    )
    def test_corrupt_store_entries_fall_back_to_a_clean_rebuild(
        self, dataset, tmp_path, corruption
    ):
        store = SnapshotStore(tmp_path)
        path = store.save(GraphSnapshot.build(dataset.graph), graph=dataset.graph)
        raw = bytearray(path.read_bytes())
        if corruption == "truncate":
            raw = raw[: len(raw) // 3]
        elif corruption == "magic":
            raw[:8] = b"NOTASNAP"
        elif corruption == "old_format_version":
            raw[8] = 1  # a leftover file from the pre-vindex format
        else:
            raw[8] = FORMAT_VERSION + 1
        path.write_bytes(bytes(raw))

        reference = MatchSession(dataset.graph).with_keys(dataset.keys).run("EMOptMR")
        session = MatchSession(dataset.graph, snapshot_store=store).with_keys(dataset.keys)
        result = session.run("EMOptMR")
        assert result_key(result) == result_key(reference)
        info = session.cache_info()
        assert info.store_misses == 1
        assert info.store_hits == 0
        assert info.snapshot_builds == 1
        # the rebuild was written back over the corrupt entry: next session hits
        again = MatchSession(dataset.graph, snapshot_store=store).with_keys(dataset.keys)
        again.run("EMOptMR")
        assert again.cache_info().store_hits == 1

    def test_mutation_between_runs_stores_the_new_version_too(self, tmp_path):
        graph, keys = music_dataset()
        store = SnapshotStore(tmp_path)
        session = MatchSession(graph, snapshot_store=store).with_keys(keys)
        session.run("EMOptVC")
        assert len(store) == 1
        graph.add_value("alb1", "bonus_of", "extra")
        session.run("EMOptVC")
        assert len(store) == 2
        assert store.contains(graph_fingerprint(graph))
        info = session.cache_info()
        # the first version was cold (a store miss); the second landed on
        # disk through the snapshot-patch write-through, never via a miss
        assert info.store_misses == 1
        assert info.snapshot_patches == 1
        assert store.metrics()["patches"] == 1

    def test_unwritable_store_never_fails_a_run(self, dataset, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("a file where the store directory should be")
        session = MatchSession(dataset.graph, snapshot_store=blocker).with_keys(dataset.keys)
        result = session.run("EMOptVC")
        assert result.pairs()
        assert session.cache_info().snapshot_builds == 1


class TestConfigPlumbing:
    def test_using_and_config_carry_the_store(self, dataset, tmp_path):
        session = MatchSession(dataset.graph).with_keys(dataset.keys)
        session.using("EMOptVC", snapshot_store=tmp_path)
        assert str(session.config.snapshot_store) == str(tmp_path)
        assert f"store=" in session.config.describe()
        session.run()
        assert session.cache_info().store_misses == 1
        # an explicit run(name) inherits the session store
        session.run("EMMR")
        assert (tmp_path / f"{graph_fingerprint(dataset.graph)}.snap").is_file()

    def test_snapshot_store_rejects_bad_types(self):
        from repro.api.config import MatchConfig

        with pytest.raises(ConfigError):
            MatchConfig(snapshot_store=42)

    def test_config_hash_and_describe_with_store(self, tmp_path):
        from repro.api.config import MatchConfig

        config = MatchConfig(snapshot_store=str(tmp_path))
        assert isinstance(hash(config), int)
        assert str(tmp_path) in config.describe()
