"""End-to-end tests of the ``repro serve`` HTTP front end.

The acceptance contract: a live server handles many concurrent match
requests across several named graphs, every result is bit-identical to a
synchronous :meth:`MatchSession.run` for the same backend, each graph's
snapshot is built exactly once (the shared-store multiplexing contract),
and over-limit load is rejected cleanly with a 429.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import ALGORITHMS, MatchSession
from repro.core.parser import serialize_graph, serialize_keys
from repro.datasets.business import business_dataset
from repro.datasets.music import music_dataset
from repro.matching.result import EMResult
from repro.service import MatchingService, make_http_server


class ServiceClient:
    """A tiny JSON-over-HTTP client bound to one test server."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port

    def request(self, method: str, path: str, body=None, timeout: float = 120.0):
        connection = http.client.HTTPConnection(self.host, self.port, timeout=timeout)
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = json.loads(response.read().decode("utf-8"))
            return response.status, data, dict(response.getheaders())
        finally:
            connection.close()

    def get(self, path, **kw):
        return self.request("GET", path, **kw)

    def post(self, path, body, **kw):
        return self.request("POST", path, body=body, **kw)

    def delete(self, path, **kw):
        return self.request("DELETE", path, **kw)


def start_server(service):
    server = make_http_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, ServiceClient(*server.server_address)


@pytest.fixture
def live():
    """A live server over a fresh service with a tmp shared store."""
    service = MatchingService(max_inflight=4, max_queued=32)
    server, client = start_server(service)
    yield service, client
    server.shutdown()
    server.server_close()
    service.close()


def register_music(client, name="music"):
    status, data, _ = client.post("/graphs", {"name": name, "dataset": "music"})
    assert status == 201, data
    return data["registered"]


def register_business(client, name="business"):
    graph, keys = business_dataset()
    status, data, _ = client.post(
        "/graphs",
        {
            "name": name,
            "graph_text": serialize_graph(graph),
            "keys_text": serialize_keys(keys),
        },
    )
    assert status == 201, data
    return data["registered"]


def result_key(result: EMResult):
    return (
        result.algorithm,
        result.stats.identified_pairs,
        tuple(sorted(tuple(sorted(c)) for c in result.eq.nontrivial_classes())),
    )


class TestBasicEndpoints:
    def test_healthz(self, live):
        _service, client = live
        status, data, _ = client.get("/healthz")
        assert status == 200 and data["ok"] is True

    def test_algorithms_catalog(self, live):
        _service, client = live
        status, data, _ = client.get("/algorithms")
        assert status == 200
        names = {entry["name"] for entry in data["algorithms"]}
        assert names == set(ALGORITHMS)
        for entry in data["algorithms"]:
            assert {"name", "family", "description", "capabilities", "options"} <= set(entry)

    def test_register_list_and_unregister(self, live):
        _service, client = live
        registered = register_music(client)
        assert registered["name"] == "music" and registered["entities"] > 0
        status, data, _ = client.get("/graphs")
        assert status == 200
        assert [g["name"] for g in data["graphs"]] == ["music"]
        # duplicate names conflict unless replace=true
        status, data, _ = client.post("/graphs", {"name": "music", "dataset": "music"})
        assert status == 409
        status, _, _ = client.post(
            "/graphs", {"name": "music", "dataset": "music", "replace": True}
        )
        assert status == 201
        status, _, _ = client.delete("/graphs/music")
        assert status == 200
        status, data, _ = client.get("/graphs")
        assert data["graphs"] == []

    def test_inline_dsl_registration_round_trips(self, live):
        _service, client = live
        graph, _keys = business_dataset()
        registered = register_business(client)
        assert registered["entities"] == graph.num_entities
        assert registered["source"] == "inline-dsl"


class TestMatchLifecycle:
    def test_synchronous_match_returns_the_result(self, live, music):
        _service, client = live
        _graph, _keys, expected = music
        register_music(client)
        status, data, _ = client.post(
            "/match", {"graph": "music", "algorithm": "EMOptVC", "wait": True}
        )
        assert status == 200 and data["status"] == "done", data
        result = EMResult.from_dict(data["result"])
        assert result.pairs() == expected
        assert data["provenance"]["graph"] == "music"

    def test_async_match_poll_events_then_result(self, live, music):
        _service, client = live
        _graph, _keys, expected = music
        register_music(client)
        status, data, _ = client.post(
            "/match", {"graph": "music", "algorithm": "EMMR"}
        )
        assert status == 202 and data["status"] in ("queued", "running", "done")
        request_id = data["id"]
        deadline = time.time() + 60.0
        while time.time() < deadline:
            status, data, _ = client.get(f"/requests/{request_id}")
            if data["status"] == "done":
                break
            time.sleep(0.02)
        assert data["status"] == "done"
        # the event stream saw the run through to its final "done" stage
        status, events, _ = client.get(f"/requests/{request_id}/events")
        assert status == 200
        stages = [e["stage"] for e in events["events"]]
        assert stages and stages[-1] == "done"
        # cursor-based polling is exactly-once
        status, again, _ = client.get(
            f"/requests/{request_id}/events?cursor={events['next_cursor']}"
        )
        assert again["events"] == []
        status, data, _ = client.get(f"/requests/{request_id}/result")
        assert status == 200
        assert EMResult.from_dict(data["result"]).pairs() == expected

    def test_concurrent_requests_across_graphs_match_sync_runs(self, live):
        """The acceptance criterion: ≥8 concurrent requests, ≥2 graphs,
        every backend, results bit-identical to MatchSession.run, and
        exactly one snapshot build per graph."""
        _service, client = live
        register_music(client)
        register_business(client)
        datasets = {"music": music_dataset(), "business": business_dataset()}
        baselines = {}
        for name, (graph, keys) in datasets.items():
            session = MatchSession(graph).with_keys(keys)
            for algorithm in ALGORITHMS:
                baselines[(name, algorithm)] = result_key(session.run(algorithm))

        jobs = [(name, algorithm) for name in datasets for algorithm in sorted(ALGORITHMS)]
        assert len(jobs) >= 8  # 2 graphs x 6 backends

        def submit(job):
            name, algorithm = job
            status, data, _ = client.post(
                "/match",
                {"graph": name, "algorithm": algorithm, "wait": True},
            )
            assert status == 200 and data["status"] == "done", data
            return job, EMResult.from_dict(data["result"])

        with ThreadPoolExecutor(max_workers=len(jobs)) as pool:
            outcomes = list(pool.map(submit, jobs))

        for job, result in outcomes:
            assert result_key(result) == baselines[job], job

        status, metrics, _ = client.get("/metrics")
        assert status == 200
        per_graph = metrics["registry"]["per_graph"]
        for name in datasets:
            assert per_graph[name]["cache"]["snapshot_builds"] == 1, name
            assert per_graph[name]["runs"] == len(ALGORITHMS)
        assert metrics["admission"]["completed"] == len(jobs)
        assert metrics["admission"]["rejected"] == 0

    def test_match_request_provenance_records_sharing(self, live):
        _service, client = live
        register_music(client)
        for _ in range(2):
            status, data, _ = client.post(
                "/match", {"graph": "music", "algorithm": "chase", "wait": True}
            )
            assert status == 200
        provenance = data["provenance"]
        assert provenance["graph_cache"]["snapshot_builds"] == 1
        assert provenance["builds_during_request"]["snapshot"] == 0


class TestAdmissionOverHttp:
    def test_over_limit_load_gets_429(self, music):
        service = MatchingService(max_inflight=1, max_queued=1)
        graph, keys, _expected = music
        service.register_graph("music", graph, keys)
        release = threading.Event()
        original = MatchingService._execute

        def slow_execute(self, entry, config, request):
            assert release.wait(timeout=30.0)
            return original(self, entry, config, request)

        MatchingService._execute = slow_execute
        server, client = start_server(service)
        try:
            body = {"graph": "music", "algorithm": "chase"}
            status, first, _ = client.post("/match", body)
            assert status == 202
            # wait until the single worker has picked the first request up
            deadline = time.time() + 10.0
            while time.time() < deadline:
                _, data, _ = client.get(f"/requests/{first['id']}")
                if data["status"] == "running":
                    break
                time.sleep(0.01)
            status, second, _ = client.post("/match", body)
            assert status == 202  # fills the queue
            status, rejected, headers = client.post("/match", body)
            assert status == 429
            assert "queue full" in rejected["error"]
            # derived from measured queue depth × mean run time (whole
            # seconds, floor 1) — not the old hardcoded "1"
            assert int(headers.get("Retry-After")) >= 1
            release.set()
            for data in (first, second):
                deadline = time.time() + 30.0
                while time.time() < deadline:
                    _, polled, _ = client.get(f"/requests/{data['id']}")
                    if polled["status"] == "done":
                        break
                    time.sleep(0.02)
                assert polled["status"] == "done"
        finally:
            MatchingService._execute = original
            release.set()
            server.shutdown()
            server.server_close()
            service.close()

    def test_cancel_a_queued_request(self, music):
        service = MatchingService(max_inflight=1, max_queued=2)
        graph, keys, _expected = music
        service.register_graph("music", graph, keys)
        release = threading.Event()
        original = MatchingService._execute

        def slow_execute(self, entry, config, request):
            assert release.wait(timeout=30.0)
            return original(self, entry, config, request)

        MatchingService._execute = slow_execute
        server, client = start_server(service)
        try:
            body = {"graph": "music", "algorithm": "chase"}
            _, first, _ = client.post("/match", body)
            deadline = time.time() + 10.0
            while time.time() < deadline:
                _, data, _ = client.get(f"/requests/{first['id']}")
                if data["status"] == "running":
                    break
                time.sleep(0.01)
            _, queued, _ = client.post("/match", body)
            status, data, _ = client.delete(f"/requests/{queued['id']}")
            assert status == 200 and data["cancelled"] is True
            # cancelling again (already terminal) conflicts
            status, data, _ = client.delete(f"/requests/{queued['id']}")
            assert status == 409 and data["status"] == "cancelled"
            # fetching the result of an unfinished request conflicts too
            status, data, _ = client.get(f"/requests/{first['id']}/result")
            assert status == 409
        finally:
            MatchingService._execute = original
            release.set()
            server.shutdown()
            server.server_close()
            service.close()


class TestKeepAlive:
    """HTTP/1.1 keep-alive: early error responses must drain the request
    body, or the next request on the persistent connection parses body
    bytes as a request line."""

    def _roundtrip(self, connection, method, path, body=None):
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        data = json.loads(response.read().decode("utf-8"))
        return response.status, data

    def test_connection_survives_error_responses_with_bodies(self, live):
        service, client = live
        register_music(client)
        ops_body = {
            "ops": [
                {"op": "add_value", "subject": "x", "predicate": "p", "value": f"v{i}"}
                for i in range(50)
            ]
        }
        connection = http.client.HTTPConnection(client.host, client.port, timeout=30.0)
        try:
            # 404 with an unread body: the ingest route 404s on the graph
            # name while the body is still in rfile
            status, data = self._roundtrip(
                connection, "POST", "/graphs/nope/ingest", ops_body
            )
            assert status == 404, data
            # the next request on the SAME connection must parse cleanly
            status, data = self._roundtrip(connection, "GET", "/healthz")
            assert status == 200 and data["ok"] is True
            # 400 with an unread remainder (unknown field short-circuits)
            status, data = self._roundtrip(
                connection, "POST", "/match", {"graph": "music", "wat": "x" * 4096}
            )
            assert status == 400
            status, data = self._roundtrip(connection, "GET", "/healthz")
            assert status == 200
            # and a real request still works afterwards
            status, data = self._roundtrip(
                connection,
                "POST",
                "/match",
                {"graph": "music", "algorithm": "chase", "wait": True},
            )
            assert status == 200 and data["status"] == "done"
        finally:
            connection.close()


class TestDrain:
    def test_drain_finishes_queued_work_and_refuses_new(self, music):
        """Graceful drain: zero queued requests dropped, new submissions
        503 with a derived Retry-After, state lands on 'drained'."""
        service = MatchingService(max_inflight=1, max_queued=4)
        graph, keys, _expected = music
        service.register_graph("music", graph, keys)
        release = threading.Event()
        original = MatchingService._execute

        def slow_execute(self, entry, config, request):
            assert release.wait(timeout=30.0)
            return original(self, entry, config, request)

        MatchingService._execute = slow_execute
        server, client = start_server(service)
        try:
            body = {"graph": "music", "algorithm": "chase"}
            submitted = []
            status, first, _ = client.post("/match", body)
            assert status == 202
            submitted.append(first["id"])
            deadline = time.time() + 10.0
            while time.time() < deadline:
                _, data, _ = client.get(f"/requests/{first['id']}")
                if data["status"] == "running":
                    break
                time.sleep(0.01)
            for _ in range(2):
                status, data, _ = client.post("/match", body)
                assert status == 202
                submitted.append(data["id"])

            drainer = threading.Thread(target=service.drain, daemon=True)
            drainer.start()
            deadline = time.time() + 10.0
            while service.state != "draining" and time.time() < deadline:
                time.sleep(0.01)
            assert service.state == "draining"

            # new work is refused while queued work keeps going
            status, refused, headers = client.post("/match", body)
            assert status == 503, refused
            assert "draining" in refused["error"]
            assert int(headers.get("Retry-After")) >= 1
            status, refused, headers = client.post(
                "/graphs/music/ingest", {"ops": []}
            )
            assert status == 503
            assert int(headers.get("Retry-After")) >= 1

            release.set()
            drainer.join(timeout=30.0)
            assert not drainer.is_alive()

            # zero dropped: every admitted request finished
            for request_id in submitted:
                status, polled, _ = client.get(f"/requests/{request_id}")
                assert status == 200
                assert polled["status"] == "done", polled
            status, metrics, _ = client.get("/metrics")
            assert metrics["state"]["state"] == "drained"
            assert metrics["state"]["drained_clean"] is True
            assert metrics["admission"]["completed"] == len(submitted)
        finally:
            MatchingService._execute = original
            release.set()
            server.shutdown()
            server.server_close()
            service.close()

    def test_drain_is_idempotent_and_close_still_works(self, music):
        service = MatchingService(max_inflight=1, max_queued=2)
        graph, keys, _expected = music
        service.register_graph("music", graph, keys)
        summary = service.drain()
        assert summary["state"] == "drained" and summary["drained_clean"] is True
        again = service.drain()
        assert again["state"] == "drained"
        with pytest.raises(Exception):
            service.submit("music")
        service.close()


class TestIngestBackpressureOverHttp:
    def test_failed_flush_then_429_then_recovery(self, live):
        """A failed flush 500s with the partial report, leaves the backlog
        counted, and the next over-limit window is refused with 429 + a
        measured Retry-After; a healthy flush clears the backlog."""
        service, client = live
        from repro.datasets.synthetic import synthetic_dataset

        dataset = synthetic_dataset(
            num_keys=4, chain_length=2, radius=2, entities_per_type=4, seed=3
        )
        service.register_graph("g", dataset.graph, dataset.keys)
        entity = sorted(dataset.graph.entity_ids())[0]

        def window(n, tag):
            return [
                {"op": "add_value", "subject": entity, "predicate": "bp", "value": f"{tag}{i}"}
                for i in range(n)
            ]

        status, payload, _ = client.post(
            "/graphs/g/ingest", {"ops": window(2, "a")}
        )
        assert status == 200, payload

        entry = service.registry.get("g")
        session = entry._ingest_session
        original_rerun = session.rerun

        def broken_rerun(**options):
            raise RuntimeError("induced flush failure")

        session.rerun = broken_rerun
        try:
            status, payload, _ = client.post(
                "/graphs/g/ingest", {"ops": window(2, "b")}
            )
            assert status == 500
            assert payload["recoverable"] is True
            assert payload["report"]["ops_unflushed"] == 2
        finally:
            session.rerun = original_rerun

        # the uncovered backlog (2 ops) + this window (3) exceeds the bound
        status, payload, headers = client.post(
            "/graphs/g/ingest", {"ops": window(3, "c"), "max_pending_ops": 4}
        )
        assert status == 429, payload
        assert int(headers.get("Retry-After")) >= 1

        # a healthy window flushes: rerun covers the whole graph state, so
        # the previously uncovered ops are covered too and the backlog clears
        status, payload, _ = client.post(
            "/graphs/g/ingest", {"ops": window(1, "d"), "max_pending_ops": 4}
        )
        assert status == 200, payload
        assert payload["report"]["ops_unflushed"] == 0
        assert service.registry.get("g").ingest_status()["pending_ops"] == 0


class TestErrorMapping:
    def test_unknown_graph_is_404(self, live):
        _service, client = live
        status, data, _ = client.post(
            "/match", {"graph": "nope", "algorithm": "chase"}
        )
        assert status == 404 and "nope" in data["error"]

    def test_unknown_request_is_404(self, live):
        _service, client = live
        status, data, _ = client.get("/requests/req-999999")
        assert status == 404

    def test_unknown_field_is_400(self, live):
        _service, client = live
        register_music(client)
        status, data, _ = client.post(
            "/match", {"graph": "music", "algorithmm": "chase"}
        )
        assert status == 400 and "unknown field" in data["error"]

    def test_bad_algorithm_is_400(self, live):
        _service, client = live
        register_music(client)
        status, data, _ = client.post(
            "/match", {"graph": "music", "algorithm": "EMNoSuch"}
        )
        assert status == 400

    def test_service_owned_fields_are_rejected(self, live):
        _service, client = live
        register_music(client)
        for field in ("snapshot_store", "incremental"):
            status, data, _ = client.post(
                "/match", {"graph": "music", "algorithm": "chase", field: True}
            )
            assert status == 400, field

    def test_unparseable_body_is_400(self, live):
        _service, client = live
        connection = http.client.HTTPConnection(client.host, client.port, timeout=30.0)
        try:
            connection.request(
                "POST", "/match", body="{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert "unparseable JSON" in json.loads(response.read())["error"]
        finally:
            connection.close()

    def test_unrouted_path_is_404(self, live):
        _service, client = live
        status, data, _ = client.get("/no/such/route")
        assert status == 404 and "no route" in data["error"]
