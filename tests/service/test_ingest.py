"""Tests of the streaming ingest pipeline (module, CLI and HTTP endpoint).

The acceptance contract of ``repro ingest``: a continuous JSONL mutation
stream is folded into latency-budgeted incremental re-matches whose final
result is **bit-identical** to a from-scratch batch run on the fully
mutated graph, the report's staleness percentiles cover every mutation
(results are never more than one batch stale), and malformed records fail
loudly instead of skewing results.
"""

from __future__ import annotations

import io
import itertools
import json

import pytest

from repro.api.session import MatchSession
from repro.core.chase import chase
from repro.datasets.music import music_dataset
from repro.datasets.synthetic import synthetic_dataset
from repro.service.ingest import (
    IngestError,
    IngestFlushError,
    IngestPipeline,
    apply_mutation,
    ingest_stream,
    iter_jsonl,
)


def small_dataset(seed=3):
    return synthetic_dataset(
        num_keys=4, chain_length=2, radius=2, entities_per_type=4, seed=seed
    )


def mutation_ops(graph, count=6):
    """A deterministic little op stream exercising several op kinds."""
    entities = sorted(graph.entity_ids())[:count]
    ops = [
        {"op": "add_value", "subject": e, "predicate": "ingest_probe", "value": f"v{i}"}
        for i, e in enumerate(entities)
    ]
    ops.append({"op": "add_entity", "id": "ing_new", "type": graph.entity_type(entities[0])})
    ops.append({"op": "add_edge", "subject": entities[0], "predicate": "ing_lnk", "object": "ing_new"})
    if len(entities) >= 3:
        ops.append({"op": "set_value", "subject": entities[1], "predicate": "ingest_probe", "value": "V1"})
        ops.append({"op": "remove_value", "subject": entities[2], "predicate": "ingest_probe", "value": "v2"})
    return ops


class TestApplyMutation:
    def test_dispatches_every_op_kind(self):
        dataset = small_dataset()
        graph = dataset.graph
        entity = sorted(graph.entity_ids())[0]
        etype = graph.entity_type(entity)
        apply_mutation(graph, {"op": "add_entity", "id": "m1", "type": etype})
        apply_mutation(graph, {"op": "add_edge", "subject": entity, "predicate": "p", "object": "m1"})
        apply_mutation(graph, {"op": "add_value", "subject": "m1", "predicate": "v", "value": "a"})
        apply_mutation(graph, {"op": "set_value", "subject": "m1", "predicate": "v", "value": "b"})
        assert {literal.value for literal in graph.objects("m1", "v")} == {"b"}
        apply_mutation(graph, {"op": "remove_value", "subject": "m1", "predicate": "v", "value": "b"})
        assert not graph.objects("m1", "v")
        apply_mutation(graph, {"op": "remove_edge", "subject": entity, "predicate": "p", "object": "m1"})
        apply_mutation(graph, {"op": "retype_entity", "id": "m1", "type": "ingest_other"})
        assert graph.entity_type("m1") == "ingest_other"

    def test_unknown_op_raises(self):
        with pytest.raises(IngestError, match="unknown ingest op"):
            apply_mutation(small_dataset().graph, {"op": "explode"})

    def test_missing_fields_raise(self):
        with pytest.raises(IngestError, match="missing field"):
            apply_mutation(small_dataset().graph, {"op": "add_edge", "subject": "x"})

    def test_graph_rejections_are_wrapped(self):
        # an edge between unknown entities is an IngestError, so the service
        # maps it to a client error (400), never a 500
        with pytest.raises(IngestError, match="failed"):
            apply_mutation(
                small_dataset().graph,
                {"op": "add_edge", "subject": "nope", "predicate": "p", "object": "nope2"},
            )


class TestIterJsonl:
    def test_skips_blanks_and_comments(self):
        stream = io.StringIO('\n# header\n{"op": "x"}\n\n{"op": "y"}\n')
        assert list(iter_jsonl(stream)) == [{"op": "x"}, {"op": "y"}]

    def test_bad_json_reports_line_number(self):
        with pytest.raises(IngestError, match="line 2"):
            list(iter_jsonl(io.StringIO('{"op": "x"}\nnot json\n')))

    def test_non_object_rejected(self):
        with pytest.raises(IngestError, match="JSON object"):
            list(iter_jsonl(io.StringIO("[1, 2]\n")))


class TestIngestPipeline:
    def test_streamed_result_identical_to_batch_full_run(self):
        """The tentpole identity: streamed ≡ from-scratch on the final graph."""
        dataset = small_dataset()
        session = MatchSession(dataset.graph).with_keys(dataset.keys)
        session.run("EMOptVC")
        pipeline = IngestPipeline(session, latency_budget=60.0, max_batch_ops=3)
        report = pipeline.run(iter(mutation_ops(dataset.graph)))
        assert report.ops_applied == 10
        assert report.batches == 4  # ceil(10 / 3): the tail flush is partial
        full = chase(dataset.graph, dataset.keys)
        assert sorted(pipeline.last_result.pairs()) == sorted(full.pairs())

    def test_batches_run_incrementally_with_snapshot_patches(self):
        dataset = small_dataset(seed=5)
        session = MatchSession(dataset.graph).with_keys(dataset.keys)
        session.run("EMOptVC")
        pipeline = IngestPipeline(session, latency_budget=60.0, max_batch_ops=2)
        report = pipeline.run(iter(mutation_ops(dataset.graph, count=4)))
        assert report.delta_modes.get("incremental", 0) >= 1
        assert "full" not in report.delta_modes
        info = session.cache_info()
        assert info.snapshot_patches == report.batches
        assert info.snapshot_builds == 1  # only the pre-stream baseline

    def test_zero_budget_flushes_every_op(self):
        dataset = small_dataset()
        session = MatchSession(dataset.graph).with_keys(dataset.keys)
        session.run("chase")
        ops = mutation_ops(dataset.graph, count=3)
        report = IngestPipeline(session, latency_budget=0.0).run(iter(ops))
        assert report.batches == report.ops_applied == len(ops)

    def test_staleness_covers_every_mutation(self):
        """p95/max staleness ≤ elapsed: each op waits at most one batch."""
        dataset = small_dataset()
        session = MatchSession(dataset.graph).with_keys(dataset.keys)
        session.run("chase")
        report = IngestPipeline(
            session, latency_budget=60.0, max_batch_ops=4
        ).run(iter(mutation_ops(dataset.graph)))
        assert 0.0 < report.staleness_p50 <= report.staleness_p95
        assert report.staleness_p95 <= report.staleness_max <= report.elapsed_seconds
        assert report.mutations_per_second > 0

    def test_empty_stream_is_a_no_op(self):
        dataset = small_dataset()
        session = MatchSession(dataset.graph).with_keys(dataset.keys)
        report = IngestPipeline(session).run(iter(()))
        assert report.ops_applied == report.batches == 0
        assert pytest.approx(0.0) == report.staleness_max

    def test_on_batch_callback_sees_each_flush(self):
        dataset = small_dataset()
        session = MatchSession(dataset.graph).with_keys(dataset.keys)
        session.run("chase")
        seen = []
        pipeline = IngestPipeline(
            session,
            latency_budget=60.0,
            max_batch_ops=2,
            on_batch=lambda result, report: seen.append(report.batches),
        )
        report = pipeline.run(iter(mutation_ops(dataset.graph, count=4)))
        assert seen == list(range(1, report.batches + 1))

    def test_bad_parameters_rejected(self):
        dataset = small_dataset()
        session = MatchSession(dataset.graph).with_keys(dataset.keys)
        with pytest.raises(IngestError):
            IngestPipeline(session, latency_budget=-1.0)
        with pytest.raises(IngestError):
            IngestPipeline(session, max_batch_ops=0)

    def test_ingest_stream_parses_jsonl(self):
        dataset = small_dataset()
        session = MatchSession(dataset.graph).with_keys(dataset.keys)
        session.run("chase")
        ops = mutation_ops(dataset.graph, count=2)
        text = "\n".join(json.dumps(op) for op in ops) + "\n# done\n"
        report = ingest_stream(
            session, io.StringIO(text), latency_budget=60.0, max_batch_ops=10
        )
        assert report.ops_applied == len(ops)
        assert report.batches == 1
        assert sorted(report.ops_by_kind) == sorted(
            {op["op"] for op in ops}
        )

    def test_report_as_dict_round_trips_through_json(self):
        dataset = small_dataset()
        session = MatchSession(dataset.graph).with_keys(dataset.keys)
        session.run("chase")
        report = IngestPipeline(session, latency_budget=60.0, max_batch_ops=5).run(
            iter(mutation_ops(dataset.graph, count=3))
        )
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["ops_applied"] == report.ops_applied
        assert payload["mutations_per_second"] == pytest.approx(
            report.mutations_per_second
        )


class TestDeadlineFlush:
    def test_stalled_stream_flushes_on_deadline(self):
        """The documented promise: a flush starts at most latency_budget
        seconds after a mutation lands — even when the *next* op never
        arrives (follow mode on a quiet journal)."""
        import threading

        dataset = small_dataset()
        session = MatchSession(dataset.graph).with_keys(dataset.keys)
        session.run("chase")
        entity = sorted(dataset.graph.entity_ids())[0]
        flushed = threading.Event()
        pipeline = IngestPipeline(
            session,
            latency_budget=0.05,
            on_batch=lambda result, report: flushed.set(),
        )

        def stalled_stream():
            yield {"op": "add_value", "subject": entity, "predicate": "stall", "value": "v"}
            # the stream now stalls; only the watchdog can flush the op
            assert flushed.wait(10.0), "deadline flush never fired on a stalled stream"

        report = pipeline.run(stalled_stream())
        assert flushed.is_set()
        assert report.ops_applied == 1 and report.batches >= 1

    def test_watchdog_flush_error_reaches_the_caller(self):
        """A flush failing on the watchdog thread must surface as an
        IngestFlushError from run(), never die silently in the thread."""
        import threading

        dataset = small_dataset()
        session = MatchSession(dataset.graph).with_keys(dataset.keys)
        session.run("chase")
        entity = sorted(dataset.graph.entity_ids())[0]

        original_rerun = session.rerun
        failed = threading.Event()

        def broken_rerun(**options):
            failed.set()
            raise RuntimeError("induced watchdog flush failure")

        session.rerun = broken_rerun
        try:
            pipeline = IngestPipeline(session, latency_budget=0.05)

            def stalled_stream():
                yield {"op": "add_value", "subject": entity, "predicate": "wd", "value": "v"}
                assert failed.wait(10.0)
                yield {"op": "add_value", "subject": entity, "predicate": "wd", "value": "w"}

            with pytest.raises(IngestFlushError):
                pipeline.run(stalled_stream())
        finally:
            session.rerun = original_rerun


class TestBackpressureWindow:
    def test_max_pending_ops_bounds_the_window(self):
        dataset = small_dataset()
        session = MatchSession(dataset.graph).with_keys(dataset.keys)
        session.run("chase")
        ops = mutation_ops(dataset.graph, count=6)  # 10 ops
        report = IngestPipeline(
            session, latency_budget=60.0, max_pending_ops=2
        ).run(iter(ops))
        assert report.ops_applied == 10
        assert report.batches == 5  # the window never exceeds 2 pending ops

    def test_bad_max_pending_ops_rejected(self):
        dataset = small_dataset()
        session = MatchSession(dataset.graph).with_keys(dataset.keys)
        with pytest.raises(IngestError):
            IngestPipeline(session, max_pending_ops=0)


class TestFailedFlush:
    def test_failed_flush_surfaces_partial_report_and_keeps_wal_open(
        self, tmp_path
    ):
        """ISSUE satellite: rerun() raising inside flush() must not lose
        the window — the partial report counts the uncovered ops and the
        WAL window stays un-checkpointed so replay/retry can cover it."""
        from repro.service.wal import WriteAheadLog

        dataset = small_dataset()
        session = MatchSession(dataset.graph).with_keys(dataset.keys)
        session.run("chase")
        entity = sorted(dataset.graph.entity_ids())[0]
        wal = WriteAheadLog(tmp_path / "wal", fsync="off")
        ops = [
            {"op": "add_value", "subject": entity, "predicate": "ff", "value": f"v{i}"}
            for i in range(3)
        ]

        original_rerun = session.rerun

        def broken_rerun(**options):
            raise RuntimeError("induced flush failure")

        session.rerun = broken_rerun
        try:
            pipeline = IngestPipeline(
                session, latency_budget=60.0, wal=wal, deadline_flush=False
            )
            with pytest.raises(IngestFlushError) as excinfo:
                pipeline.run(iter(ops))
        finally:
            session.rerun = original_rerun

        error = excinfo.value
        assert error.report.ops_applied == 3
        assert error.report.ops_unflushed == 3
        assert error.report.batches == 0
        # the ops ARE on the live graph (that is the inconsistency being
        # reported) and ARE journalled, but no checkpoint covers them
        assert wal.pending_count == 3
        assert wal.checkpoints_written == 0
        assert len(wal.state().pending_ops) == 3

        # a retry flush through a healthy session covers the window and
        # checkpoints the journal
        retry = IngestPipeline(
            session, latency_budget=60.0, wal=wal, deadline_flush=False
        )
        report = retry.run(iter(()))  # empty stream: nothing new to apply
        assert report.ops_applied == 0
        # the uncovered ops still need a flush: push one no-op-sized window
        report = retry.run(
            iter([{"op": "add_value", "subject": entity, "predicate": "ff", "value": "v3"}])
        )
        assert report.batches == 1
        assert wal.pending_count == 0
        full = chase(dataset.graph, dataset.keys)
        assert sorted(retry.last_result.pairs()) == sorted(full.pairs())
        wal.close()

    def test_rejected_op_is_disowned_in_the_wal(self, tmp_path):
        """An op the graph refuses must not replay: append-before-apply
        pairs with a failure marker."""
        from repro.service.wal import WriteAheadLog

        dataset = small_dataset()
        session = MatchSession(dataset.graph).with_keys(dataset.keys)
        session.run("chase")
        wal = WriteAheadLog(tmp_path / "wal", fsync="off")
        pipeline = IngestPipeline(
            session, latency_budget=60.0, wal=wal, deadline_flush=False
        )
        bad = {"op": "add_edge", "subject": "nope", "predicate": "p", "object": "nope2"}
        with pytest.raises(IngestError):
            pipeline.run(iter([bad]))
        assert wal.appends == 1
        assert wal.pending_count == 0
        assert wal.state().ops == []  # the failure marker disowned it
        wal.close()


class TestIngestCLI:
    @pytest.fixture
    def music_files(self, tmp_path):
        from repro.core.parser import save_graph, save_keys

        graph, keys = music_dataset()
        graph_path = tmp_path / "music.graph"
        keys_path = tmp_path / "music.keys"
        save_graph(graph, graph_path)
        save_keys(keys, keys_path)
        return graph, str(graph_path), str(keys_path)

    def test_ingest_command_reports_throughput_and_staleness(
        self, music_files, tmp_path, capsys
    ):
        from repro.cli import main

        graph, graph_path, keys_path = music_files
        ops_path = tmp_path / "ops.jsonl"
        entity = sorted(graph.entity_ids())[0]
        ops_path.write_text(
            "\n".join(
                json.dumps(
                    {"op": "add_value", "subject": entity, "predicate": "cli_probe", "value": f"v{i}"}
                )
                for i in range(4)
            )
        )
        exit_code = main(
            ["ingest", "--graph", graph_path, "--keys", keys_path,
             "--ops", str(ops_path), "--batch-ops", "2",
             "--latency-budget", "60", "--snapshot-store", str(tmp_path / "snaps")]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "ops applied    : 4" in output
        assert "batches        : 2" in output
        assert "mutations/s" in output
        assert "staleness" in output
        assert "patch(es)" in output

    def test_ingest_json_report(self, music_files, tmp_path, capsys):
        from repro.cli import main

        graph, graph_path, keys_path = music_files
        ops_path = tmp_path / "ops.jsonl"
        entity = sorted(graph.entity_ids())[0]
        ops_path.write_text(
            json.dumps({"op": "add_value", "subject": entity, "predicate": "p", "value": "x"})
        )
        exit_code = main(
            ["ingest", "--graph", graph_path, "--keys", keys_path,
             "--ops", str(ops_path), "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ops_applied"] == 1
        assert payload["batches"] == 1
        assert "identified" in payload

    def test_ingest_bad_stream_is_a_clean_error(self, music_files, tmp_path, capsys):
        from repro.cli import main

        _, graph_path, keys_path = music_files
        ops_path = tmp_path / "ops.jsonl"
        ops_path.write_text('{"op": "explode"}')
        exit_code = main(
            ["ingest", "--graph", graph_path, "--keys", keys_path, "--ops", str(ops_path)]
        )
        assert exit_code == 2
        assert "unknown ingest op" in capsys.readouterr().err


class TestIngestEndpoint:
    @pytest.fixture
    def live(self):
        import threading

        from repro.service import MatchingService, make_http_server
        from test_server import ServiceClient

        service = MatchingService(max_inflight=2, max_queued=8)
        server = make_http_server(service, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(*server.server_address)
        yield service, client
        server.shutdown()
        server.server_close()
        service.close()

    @staticmethod
    def pairs_of(result_payload):
        return sorted(
            pair
            for cls in result_payload["classes"]
            for pair in itertools.combinations(sorted(cls), 2)
        )

    def test_ingest_window_returns_exact_result(self, live):
        service, client = live
        dataset = small_dataset()
        service.register_graph("g", dataset.graph, dataset.keys)
        ops = mutation_ops(dataset.graph, count=4)
        status, payload, _ = client.post(
            "/graphs/g/ingest",
            {"ops": ops, "max_batch_ops": 3, "latency_budget": 60.0},
        )
        assert status == 200, payload
        assert payload["report"]["ops_applied"] == len(ops)
        full = chase(dataset.graph, dataset.keys)
        assert self.pairs_of(payload["result"]) == sorted(full.pairs())

    def test_second_window_stays_incremental(self, live):
        """The persistent per-graph ingest session seeds across windows."""
        service, client = live
        dataset = small_dataset(seed=9)
        service.register_graph("g", dataset.graph, dataset.keys)
        entity = sorted(dataset.graph.entity_ids())[0]
        op = {"op": "add_value", "subject": entity, "predicate": "w", "value": "1"}
        client.post("/graphs/g/ingest", {"ops": [op]})
        status, payload, _ = client.post(
            "/graphs/g/ingest",
            {"ops": [dict(op, value="2")]},
        )
        assert status == 200
        assert payload["report"]["delta_modes"] == {"incremental": 1}
        status, graphs, _ = client.get("/graphs")
        entry = graphs["graphs"][0]
        assert entry["ingested_ops"] == 2
        assert entry["ingest_batches"] == 2
        assert entry["cache"]["snapshot_patches"] >= 1

    def test_bad_ops_and_unknown_graph_map_to_client_errors(self, live):
        service, client = live
        dataset = small_dataset()
        service.register_graph("g", dataset.graph, dataset.keys)
        status, payload, _ = client.post("/graphs/g/ingest", {"ops": [{"op": "explode"}]})
        assert status == 400 and "unknown ingest op" in payload["error"]
        status, payload, _ = client.post("/graphs/nope/ingest", {"ops": []})
        assert status == 404
        status, payload, _ = client.post("/graphs/g/ingest", {"ops": "not a list"})
        assert status == 400
        status, payload, _ = client.post("/graphs/g/ingest", {"ops": [], "wat": 1})
        assert status == 400

    def test_empty_window_answers_with_an_exact_result(self, live):
        service, client = live
        dataset = small_dataset()
        service.register_graph("g", dataset.graph, dataset.keys)
        status, payload, _ = client.post("/graphs/g/ingest", {"ops": []})
        assert status == 200
        assert payload["report"]["ops_applied"] == 0
        full = chase(dataset.graph, dataset.keys)
        assert self.pairs_of(payload["result"]) == sorted(full.pairs())
