"""Admission control: the MatchRequest state machine and the bounded queue."""

from __future__ import annotations

import threading
import time

import pytest

from repro.api.events import ProgressEvent
from repro.exceptions import AdmissionError, ServiceError
from repro.service.queue import (
    EVENT_BUFFER_SIZE,
    TERMINAL_STATES,
    AdmissionController,
    MatchRequest,
)


def event(round: int = 0) -> ProgressEvent:
    return ProgressEvent(algorithm="test", stage="round", round=round)


def wait_for(predicate, timeout: float = 10.0) -> bool:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


class TestMatchRequest:
    def test_lifecycle_queued_running_done(self):
        request = MatchRequest(graph="g")
        assert request.status == "queued" and not request.finished
        assert request._transition("running")
        assert request.started_at is not None
        assert request.queue_wait is not None and request.queue_wait >= 0
        assert request._transition("done")
        assert request.finished and request.finished_at is not None
        assert request.wait(timeout=1.0)

    def test_terminal_states_are_absorbing(self):
        for terminal in TERMINAL_STATES:
            request = MatchRequest(graph="g")
            assert request._transition(terminal)
            assert not request._transition("running")
            assert request.status == terminal

    def test_cancel_only_while_queued(self):
        request = MatchRequest(graph="g")
        request._transition("running")
        assert not request.cancel()
        queued = MatchRequest(graph="g")
        assert queued.cancel()
        assert queued.status == "cancelled" and queued.finished

    def test_event_buffer_cursor_is_exactly_once(self):
        request = MatchRequest(graph="g")
        for i in range(3):
            request.record_event(event(round=i))
        events, cursor = request.events_after(0)
        assert [e["round"] for e in events] == [0, 1, 2]
        assert cursor == 3
        again, cursor = request.events_after(cursor)
        assert again == [] and cursor == 3
        request.record_event(event(round=3))
        more, cursor = request.events_after(cursor)
        assert [e["round"] for e in more] == [3] and cursor == 4

    def test_event_buffer_is_bounded_with_absolute_cursor(self):
        request = MatchRequest(graph="g")
        total = EVENT_BUFFER_SIZE + 40
        for i in range(total):
            request.record_event(event(round=i))
        events, cursor = request.events_after(0)
        assert len(events) == EVENT_BUFFER_SIZE
        assert events[0]["round"] == 40  # the evicted prefix is skipped
        assert cursor == total
        assert request.events_dropped == 40

    def test_deadline_derives_from_submission(self):
        request = MatchRequest(graph="g", timeout=5.0)
        assert request.deadline == pytest.approx(request.submitted_at + 5.0)
        assert MatchRequest(graph="g").deadline is None


class BlockingWork:
    """A work callable gated on an event, recording what actually ran."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.ran = []

    def __call__(self, request):
        self.started.set()
        assert self.release.wait(timeout=30.0)
        self.ran.append(request.id)


class TestAdmissionController:
    def test_rejects_nonpositive_limits(self):
        with pytest.raises(ServiceError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ServiceError):
            AdmissionController(max_queued=0)

    def test_happy_path_runs_the_work(self):
        controller = AdmissionController(max_inflight=2, max_queued=4)
        try:
            ran = []
            request = controller.submit(MatchRequest(graph="g"), lambda r: ran.append(r.id))
            assert request.wait(timeout=10.0)
            assert request.status == "done" and ran == [request.id]
            metrics = controller.metrics()
            assert metrics["accepted"] == 1 and metrics["completed"] == 1
        finally:
            controller.shutdown()

    def test_over_limit_load_is_rejected_as_429(self):
        controller = AdmissionController(max_inflight=1, max_queued=1)
        blocker = BlockingWork()
        try:
            first = controller.submit(MatchRequest(graph="g"), blocker)
            assert blocker.started.wait(timeout=10.0)  # worker is busy
            second = controller.submit(MatchRequest(graph="g"), blocker)
            third = MatchRequest(graph="g")
            with pytest.raises(AdmissionError, match="queue full"):
                controller.submit(third, blocker)
            assert third.status == "rejected" and third.finished
            assert third.error == "admission queue full"
            assert controller.metrics()["rejected"] == 1
            blocker.release.set()
            assert first.wait(timeout=10.0) and second.wait(timeout=10.0)
            assert first.status == "done" and second.status == "done"
        finally:
            blocker.release.set()
            controller.shutdown()

    def test_cancelled_queued_request_is_never_dispatched(self):
        controller = AdmissionController(max_inflight=1, max_queued=2)
        blocker = BlockingWork()
        try:
            controller.submit(MatchRequest(graph="g"), blocker)
            assert blocker.started.wait(timeout=10.0)
            queued = controller.submit(MatchRequest(graph="g"), blocker)
            assert queued.cancel()
            blocker.release.set()
            assert wait_for(lambda: controller.metrics()["cancelled"] == 1)
            assert queued.status == "cancelled"
            assert queued.id not in blocker.ran  # the work never ran
        finally:
            blocker.release.set()
            controller.shutdown()

    def test_queue_wait_deadline_marks_timeout(self):
        controller = AdmissionController(max_inflight=1, max_queued=2)
        blocker = BlockingWork()
        try:
            controller.submit(MatchRequest(graph="g"), blocker)
            assert blocker.started.wait(timeout=10.0)
            late = controller.submit(
                MatchRequest(graph="g", timeout=0.05), blocker
            )
            time.sleep(0.2)  # let the deadline expire while queued
            blocker.release.set()
            assert late.wait(timeout=10.0)
            assert late.status == "timeout"
            assert "timed out" in late.error
            assert late.id not in blocker.ran
            assert controller.metrics()["timed_out"] == 1
        finally:
            blocker.release.set()
            controller.shutdown()

    def test_failing_work_marks_failed_and_keeps_the_worker(self):
        controller = AdmissionController(max_inflight=1, max_queued=4)
        try:

            def exploding(_request):
                raise RuntimeError("boom")

            bad = controller.submit(MatchRequest(graph="g"), exploding)
            assert bad.wait(timeout=10.0)
            assert bad.status == "failed" and "boom" in bad.error
            # the worker survived: a follow-up request still completes
            good = controller.submit(MatchRequest(graph="g"), lambda r: None)
            assert good.wait(timeout=10.0) and good.status == "done"
            metrics = controller.metrics()
            assert metrics["failed"] == 1 and metrics["completed"] == 1
        finally:
            controller.shutdown()

    def test_submit_after_shutdown_raises(self):
        controller = AdmissionController()
        controller.shutdown()
        with pytest.raises(ServiceError, match="shut down"):
            controller.submit(MatchRequest(graph="g"), lambda r: None)

    def test_metrics_track_queue_depth_and_wait(self):
        controller = AdmissionController(max_inflight=1, max_queued=4)
        blocker = BlockingWork()
        try:
            controller.submit(MatchRequest(graph="g"), blocker)
            assert blocker.started.wait(timeout=10.0)
            queued = [
                controller.submit(MatchRequest(graph="g"), blocker)
                for _ in range(3)
            ]
            assert controller.metrics()["max_queue_depth_seen"] >= 3
            blocker.release.set()
            for request in queued:
                assert request.wait(timeout=10.0)
            metrics = controller.metrics()
            assert metrics["completed"] == 4
            assert metrics["mean_queue_wait_seconds"] >= 0.0
        finally:
            blocker.release.set()
            controller.shutdown()
