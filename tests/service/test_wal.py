"""Tests of the write-ahead op journal and crash recovery.

The durability contract under test: every ingest op is journalled before
it touches the graph, every flush checkpoints the journal with the
post-flush content fingerprint, and a process killed mid-ingest recovers
on restart by replaying the un-covered suffix through the normal pipeline
— with a final ``Eq`` **bit-identical** to the uninterrupted run and the
fingerprint accumulator verified against every checkpoint passed.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.api.session import MatchSession
from repro.core.chase import chase
from repro.core.fingerprint import fingerprint_of, graph_fingerprint
from repro.datasets.synthetic import synthetic_dataset
from repro.exceptions import WalError
from repro.service.ingest import IngestPipeline, apply_mutation
from repro.service.wal import WriteAheadLog, replay


def small_dataset(seed=3):
    return synthetic_dataset(
        num_keys=4, chain_length=2, radius=2, entities_per_type=4, seed=seed
    )


def mutation_ops(graph, count=6):
    """The same deterministic op stream test_ingest uses (10 ops)."""
    entities = sorted(graph.entity_ids())[:count]
    ops = [
        {"op": "add_value", "subject": e, "predicate": "ingest_probe", "value": f"v{i}"}
        for i, e in enumerate(entities)
    ]
    ops.append({"op": "add_entity", "id": "ing_new", "type": graph.entity_type(entities[0])})
    ops.append({"op": "add_edge", "subject": entities[0], "predicate": "ing_lnk", "object": "ing_new"})
    if len(entities) >= 3:
        ops.append({"op": "set_value", "subject": entities[1], "predicate": "ingest_probe", "value": "V1"})
        ops.append({"op": "remove_value", "subject": entities[2], "predicate": "ingest_probe", "value": "v2"})
    return ops


def probe_ops(n, tag="w"):
    return [
        {"op": "add_entity", "id": f"{tag}{i}", "type": "wal_probe"} for i in range(n)
    ]


FP_A = "a" * 64
FP_B = "b" * 64


class TestWalBasics:
    def test_append_checkpoint_roundtrip_across_reopen(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync="off", base_fingerprint=FP_A)
        for op in probe_ops(3):
            wal.append(op)
        assert wal.pending_count == 3
        covered = wal.checkpoint(FP_B, note="t")
        assert covered == 3 and wal.pending_count == 0
        wal.append({"op": "add_entity", "id": "tail", "type": "wal_probe"})
        wal.close()

        reopened = WriteAheadLog(tmp_path / "wal", fsync="off")
        assert reopened.pending_count == 1
        state = reopened.state()
        assert state.base_fingerprint == FP_A
        assert [op["id"] for op in state.ops] == ["w0", "w1", "w2", "tail"]
        assert len(state.checkpoints) == 1
        assert state.checkpoints[0].fingerprint == FP_B
        assert state.checkpoints[0].position == 3
        assert state.checkpoints[0].note == "t"
        assert [op["id"] for op in state.pending_ops] == ["tail"]
        assert state.last_fingerprint == FP_B
        reopened.close()

    def test_bad_options_rejected(self, tmp_path):
        with pytest.raises(WalError, match="fsync"):
            WriteAheadLog(tmp_path / "w1", fsync="sometimes")
        with pytest.raises(WalError, match="retention"):
            WriteAheadLog(tmp_path / "w2", retain="forever")
        with pytest.raises(WalError, match="segment_max_bytes"):
            WriteAheadLog(tmp_path / "w3", segment_max_bytes=0)

    def test_mark_failed_disowns_the_last_op(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync="off")
        wal.append(probe_ops(1)[0])
        wal.append({"op": "add_edge", "subject": "no", "predicate": "p", "object": "pe"})
        wal.mark_failed()
        assert wal.pending_count == 1
        state = wal.state()
        assert [op["op"] for op in state.ops] == ["add_entity"]
        wal.close()

    def test_mark_failed_with_nothing_pending_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync="off")
        with pytest.raises(WalError, match="no pending op"):
            wal.mark_failed()
        wal.close()

    def test_closed_wal_refuses_writes(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync="off")
        wal.close()
        with pytest.raises(WalError, match="closed"):
            wal.append(probe_ops(1)[0])
        with pytest.raises(WalError, match="closed"):
            wal.checkpoint(FP_A)

    def test_fsync_policy_counters(self, tmp_path):
        always = WriteAheadLog(tmp_path / "always", fsync="always")
        for op in probe_ops(2):
            always.append(op)
        always.checkpoint(FP_A)
        assert always.fsync_calls >= 3  # one per append + the checkpoint
        always.close()

        batch = WriteAheadLog(tmp_path / "batch", fsync="batch")
        for op in probe_ops(2):
            batch.append(op)
        assert batch.fsync_calls == 0
        batch.checkpoint(FP_A)
        assert batch.fsync_calls == 1
        batch.close()

        off = WriteAheadLog(tmp_path / "off", fsync="off")
        for op in probe_ops(2):
            off.append(op)
        off.checkpoint(FP_A)
        off.close()
        assert off.fsync_calls == 0

    def test_metrics_shape(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync="batch", base_fingerprint=FP_A)
        wal.append(probe_ops(1)[0])
        wal.checkpoint(FP_B)
        metrics = wal.metrics()
        for key in (
            "root", "fsync_policy", "retain", "segments", "segments_created",
            "segments_removed", "appends", "checkpoints", "pending_ops",
            "bytes_written", "fsync_calls", "replays", "replayed_ops",
            "repaired_tail_bytes",
        ):
            assert key in metrics
        assert metrics["appends"] == 1 and metrics["checkpoints"] == 1
        assert metrics["pending_ops"] == 0 and metrics["segments"] == 1
        wal.close()


class TestTornTail:
    def test_torn_final_line_is_repaired_on_reopen(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync="off", base_fingerprint=FP_A)
        for op in probe_ops(2):
            wal.append(op)
        wal.checkpoint(FP_B)
        wal.close()
        segment = sorted((tmp_path / "wal").iterdir())[-1]
        with open(segment, "ab") as handle:
            handle.write(b'{"op": "add_entity", "id": "to')  # the crash tore this write

        reopened = WriteAheadLog(tmp_path / "wal", fsync="off")
        assert reopened.repaired_tail_bytes > 0
        state = reopened.state()
        assert not state.torn_tail  # the reopen already truncated it away
        assert len(state.ops) == 2 and reopened.pending_count == 0
        # the repaired journal accepts new writes on the same segment
        reopened.append(probe_ops(1, tag="post")[0])
        assert reopened.pending_count == 1
        reopened.close()

    def test_mid_file_corruption_is_fatal(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync="off", base_fingerprint=FP_A)
        for op in probe_ops(3):
            wal.append(op)
        wal.checkpoint(FP_B)
        wal.close()
        segment = sorted((tmp_path / "wal").iterdir())[-1]
        lines = segment.read_bytes().split(b"\n")
        lines[1] = b"\x00\xff not json"  # a complete (newline-terminated) bad line
        segment.write_bytes(b"\n".join(lines))
        with pytest.raises(WalError, match="corrupt WAL record"):
            WriteAheadLog(tmp_path / "wal", fsync="off")


class TestSegments:
    def test_rollover_is_checkpoint_aligned(self, tmp_path):
        wal = WriteAheadLog(
            tmp_path / "wal", fsync="off", segment_max_bytes=1,
            base_fingerprint=FP_A,
        )
        for round_ in range(3):
            wal.append(probe_ops(1, tag=f"r{round_}_")[0])
            wal.checkpoint(f"{round_:064d}")
        assert wal.segments_created >= 3
        assert wal.segments_removed == 0  # retain="all" keeps history
        state = wal.state()
        assert state.base_fingerprint == FP_A  # oldest segment still anchors
        assert len(state.ops) == 3 and len(state.checkpoints) == 3
        wal.close()

    def test_window_retention_drops_covered_segments(self, tmp_path):
        wal = WriteAheadLog(
            tmp_path / "wal", fsync="off", retain="window", segment_max_bytes=1,
            base_fingerprint=FP_A,
        )
        for round_ in range(4):
            wal.append(probe_ops(1, tag=f"r{round_}_")[0])
            wal.checkpoint(f"{round_:064d}")
        assert wal.segments_removed >= 1
        assert wal.metrics()["segments"] < wal.segments_created
        # the retained window re-anchors at a checkpoint fingerprint, so
        # recovery from that state is still well-defined
        state = wal.state()
        assert state.base_fingerprint is not None
        assert state.base_fingerprint != FP_A
        wal.close()


class TestRecoveryPlan:
    def _journalled_run(self, tmp_path):
        """A real checkpointed run: 4 ops in 2 flushed batches."""
        dataset = small_dataset()
        session = MatchSession(dataset.graph).with_keys(dataset.keys)
        session.run("chase")
        base_fp = fingerprint_of(dataset.graph)
        wal = WriteAheadLog(tmp_path / "wal", fsync="off", base_fingerprint=base_fp)
        ops = mutation_ops(dataset.graph)[:4]
        IngestPipeline(
            session, latency_budget=60.0, max_batch_ops=2,
            wal=wal, deadline_flush=False,
        ).run(iter(ops))
        return dataset, session, wal, base_fp, ops

    def test_plan_from_base_midpoint_and_tip(self, tmp_path):
        dataset, _session, wal, base_fp, _ops = self._journalled_run(tmp_path)
        state = wal.state()
        assert len(state.checkpoints) == 2
        mid_fp = state.checkpoints[0].fingerprint
        tip_fp = fingerprint_of(dataset.graph)
        assert tip_fp == state.checkpoints[1].fingerprint

        from_base = wal.recovery_plan(base_fp)
        assert [len(span.ops) for span in from_base] == [2, 2]
        assert [span.expected_fingerprint for span in from_base] == [mid_fp, tip_fp]
        from_mid = wal.recovery_plan(mid_fp)
        assert [len(span.ops) for span in from_mid] == [2]
        assert wal.recovery_plan(tip_fp) == []
        wal.close()

    def test_plan_includes_uncheckpointed_tail(self, tmp_path):
        dataset, _session, wal, base_fp, _ops = self._journalled_run(tmp_path)
        wal.append({"op": "add_entity", "id": "tail", "type": "wal_probe"})
        spans = wal.recovery_plan(fingerprint_of(dataset.graph))
        assert len(spans) == 1
        assert spans[0].expected_fingerprint is None
        assert [op["id"] for op in spans[0].ops] == ["tail"]
        wal.close()

    def test_unrecognized_fingerprint_is_fatal(self, tmp_path):
        _dataset, _session, wal, _base_fp, _ops = self._journalled_run(tmp_path)
        with pytest.raises(WalError, match="does not describe this graph"):
            wal.recovery_plan("f" * 64)
        wal.close()

    def test_empty_journal_plans_nothing(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync="off", base_fingerprint=FP_A)
        assert wal.recovery_plan(FP_A) == []
        assert not wal.has_records()
        wal.close()


class TestReplayIdentity:
    def test_simulated_crash_replay_is_bit_identical(self, tmp_path):
        """Crash between a checkpoint and the next flush: the restart
        replays the checkpointed prefix AND the applied-but-uncovered tail,
        and the continued run ends bit-identical to an uninterrupted one."""
        dataset = small_dataset()
        session = MatchSession(dataset.graph).with_keys(dataset.keys)
        session.run("chase")
        base_fp = fingerprint_of(dataset.graph)
        ops = mutation_ops(dataset.graph)
        assert len(ops) == 10

        wal = WriteAheadLog(tmp_path / "wal", fsync="off", base_fingerprint=base_fp)
        IngestPipeline(
            session, latency_budget=60.0, max_batch_ops=4,
            wal=wal, deadline_flush=False,
        ).run(iter(ops[:4]))
        assert wal.checkpoints_written == 1
        # the crash window: ops journalled and applied but never flushed —
        # the WAL object is abandoned without close(), like a SIGKILL
        for op in ops[4:7]:
            wal.append(op)
            apply_mutation(dataset.graph, op)

        # --- restart: a fresh process state at the journal base -------------
        restarted = small_dataset()
        session2 = MatchSession(restarted.graph).with_keys(restarted.keys)
        session2.run("chase")
        assert fingerprint_of(restarted.graph) == base_fp
        wal2 = WriteAheadLog(tmp_path / "wal", fsync="off")
        report = replay(wal2, session2)
        assert report.ops_replayed == 7
        assert report.checkpoints_verified == 1
        assert report.pending_replayed == 3
        assert report.final_fingerprint == fingerprint_of(restarted.graph)
        # the recovery checkpoint covers the journal: a second restart
        # replays nothing
        assert wal2.pending_count == 0
        again = replay(wal2, session2)
        assert again.ops_replayed == 0

        # --- continue the stream where the crash cut it ----------------------
        pipeline = IngestPipeline(
            session2, latency_budget=60.0, max_batch_ops=4,
            wal=wal2, deadline_flush=False,
        )
        pipeline.run(iter(ops[7:]))

        # --- the uninterrupted twin ------------------------------------------
        twin = small_dataset()
        for op in ops:
            apply_mutation(twin.graph, op)
        expected = chase(twin.graph, twin.keys)
        assert sorted(pipeline.last_result.pairs()) == sorted(expected.pairs())
        assert sorted(
            sorted(group) for group in pipeline.last_result.eq.nontrivial_classes()
        ) == sorted(sorted(group) for group in expected.eq.nontrivial_classes())
        assert fingerprint_of(session2.graph) == graph_fingerprint(twin.graph)
        wal2.close()

    def test_replay_rejects_a_journal_from_another_graph(self, tmp_path):
        dataset = small_dataset()
        session = MatchSession(dataset.graph).with_keys(dataset.keys)
        session.run("chase")
        wal = WriteAheadLog(
            tmp_path / "wal", fsync="off", base_fingerprint=FP_A
        )
        wal.append({"op": "add_entity", "id": "x", "type": "wal_probe"})
        wal.checkpoint(FP_B)
        with pytest.raises(WalError, match="does not describe this graph"):
            replay(wal, session)
        wal.close()


_CRASH_CHILD = textwrap.dedent(
    """
    import sys, time
    from repro.api.session import MatchSession
    from repro.core.fingerprint import fingerprint_of
    from repro.datasets.synthetic import synthetic_dataset
    from repro.service.ingest import IngestPipeline
    from repro.service.wal import WriteAheadLog

    wal_root, marker = sys.argv[1], sys.argv[2]
    dataset = synthetic_dataset(
        num_keys=4, chain_length=2, radius=2, entities_per_type=4, seed=3
    )
    session = MatchSession(dataset.graph).with_keys(dataset.keys)
    session.run("chase")
    wal = WriteAheadLog(
        wal_root, fsync="always", base_fingerprint=fingerprint_of(dataset.graph)
    )
    def endless():
        i = 0
        while True:
            yield {"op": "add_entity", "id": f"crash{i}", "type": "wal_probe"}
            i += 1
            if i == 6:
                with open(marker, "w") as handle:
                    handle.write("ready")
            if i >= 6:
                time.sleep(0.05)
    IngestPipeline(
        session, latency_budget=60.0, max_batch_ops=4,
        wal=wal, deadline_flush=False,
    ).run(endless())
    """
)


class TestCrashRecoverySubprocess:
    def test_sigkill_mid_ingest_recovers_bit_identical(self, tmp_path):
        """The ISSUE acceptance gate: SIGKILL a real process mid-ingest,
        restart, replay the WAL — the recovered Eq is bit-identical to a
        run that applied the same journalled ops uninterrupted, and the
        fingerprint accumulator matches a full recompute."""
        child_path = tmp_path / "crash_child.py"
        child_path.write_text(_CRASH_CHILD)
        wal_root = tmp_path / "wal"
        marker = tmp_path / "ready"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(Path_src()), env.get("PYTHONPATH", "")])
        )
        process = subprocess.Popen(
            [sys.executable, str(child_path), str(wal_root), str(marker)],
            env=env,
        )
        try:
            deadline = time.monotonic() + 30.0
            while not marker.exists():
                if process.poll() is not None:
                    pytest.fail(f"child exited early with {process.returncode}")
                if time.monotonic() > deadline:
                    pytest.fail("child never reached the kill point")
                time.sleep(0.02)
            os.kill(process.pid, signal.SIGKILL)
            process.wait(timeout=10.0)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup only
                process.kill()
                process.wait(timeout=10.0)

        # --- restart -----------------------------------------------------
        wal = WriteAheadLog(wal_root, fsync="off")
        state = wal.state()
        assert len(state.ops) >= 6  # the 6 pre-marker ops made it to disk
        assert len(state.checkpoints) >= 1  # at least one batch flushed

        dataset = small_dataset()
        session = MatchSession(dataset.graph).with_keys(dataset.keys)
        session.run("chase")
        report = replay(wal, session)
        assert report.ops_replayed == len(state.ops)
        assert report.checkpoints_verified == len(state.checkpoints)
        result = session.rerun()

        # --- the uninterrupted twin over the same journalled ops ----------
        twin = small_dataset()
        from repro.service.ingest import apply_mutation as apply_op

        for op in state.ops:
            apply_op(twin.graph, op)
        expected = chase(twin.graph, twin.keys)
        assert sorted(result.pairs()) == sorted(expected.pairs())
        assert sorted(
            sorted(group) for group in result.eq.nontrivial_classes()
        ) == sorted(sorted(group) for group in expected.eq.nontrivial_classes())
        assert fingerprint_of(session.graph) == graph_fingerprint(twin.graph)
        wal.close()


def Path_src():
    """The repo's src/ directory, so the crash child imports repro."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


class TestServiceRestartRecovery:
    def test_registry_reopen_replays_the_journal(self, tmp_path):
        """Restart semantics at the service layer: a registry reopened on
        the same wal_root replays each graph's journal at register time."""
        from repro.service.registry import GraphRegistry

        dataset = small_dataset()
        registry = GraphRegistry(wal_root=tmp_path / "wal")
        registry.register("g", dataset.graph, dataset.keys)
        entity = sorted(dataset.graph.entity_ids())[0]
        ops = [
            {"op": "add_value", "subject": entity, "predicate": "rs", "value": f"v{i}"}
            for i in range(3)
        ]
        report, result = registry.get("g").ingest(ops, latency_budget=60.0)
        assert report.ops_applied == 3
        final_fp = fingerprint_of(dataset.graph)
        registry.close()

        # restart: a fresh registry + the graph rebuilt at its base state
        rebuilt = small_dataset()
        registry2 = GraphRegistry(wal_root=tmp_path / "wal")
        registry2.register("g", rebuilt.graph, rebuilt.keys)
        entry = registry2.get("g")
        assert entry.last_recovery is not None
        assert entry.last_recovery["ops_replayed"] == 3
        assert fingerprint_of(rebuilt.graph) == final_fp
        status = entry.ingest_status()
        assert status["last_recovery"]["final_fingerprint"] == final_fp
        assert status["wal"]["replays"] == 1
        # the recovered graph answers matches identically to the original
        assert sorted(result.pairs()) == sorted(
            chase(rebuilt.graph, rebuilt.keys).pairs()
        )
        registry2.close()
