#!/usr/bin/env python3
"""Matching-service benchmark: a live ``repro serve`` under concurrent load.

Boots the real HTTP front end (``repro.service``) on an ephemeral port,
registers several named graphs multiplexing one shared snapshot store, and
drives a closed-loop pool of HTTP clients through every registered backend.
Reports:

* **throughput** — completed requests per second over the whole burst;
* **latency** — per-request wall clock (submit → result), p50 / p95 / max;
* **queue depth** — admission-queue occupancy sampled from ``/metrics``
  while the burst is in flight;
* **sharing** — snapshot builds per graph (must be exactly 1) and the
  shared-store hit ratio across all sessions.

Correctness is a hard requirement: every HTTP result must be bit-identical
(pairs, statistics, simulated seconds) to a synchronous
``MatchSession.run`` of the same backend on the same graph, and each
graph's snapshot must have been built exactly once — or the script exits
non-zero.  Timings are written to ``BENCH_service.json``; CI uploads the
artifact on every run.

Run with:  python benchmarks/bench_service.py --out BENCH_service.json
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import platform
import statistics
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Tuple

from repro.api.registry import ALGORITHMS
from repro.api.session import MatchSession
from repro.datasets.music import music_dataset
from repro.datasets.synthetic import synthetic_dataset
from repro.matching.result import EMResult
from repro.service import MatchingService, make_http_server


def _result_key(result) -> tuple:
    """Everything an EMResult pins down besides measured wall clock."""
    return (
        sorted(result.pairs()),
        result.stats.as_dict(),
        round(result.simulated_seconds, 9),
    )


def _http_json(
    host: str, port: int, method: str, path: str, body=None, timeout: float = 600.0
) -> Tuple[int, dict]:
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def _percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run_bench(
    scale: float, rounds: int, max_inflight: int, store_dir: str
) -> Dict:
    synthetic = synthetic_dataset(
        num_keys=6, chain_length=2, radius=2, entities_per_type=8,
        scale=scale, seed=11,
    )
    graphs = {
        "music": music_dataset(),
        "synthetic": (synthetic.graph, synthetic.keys),
    }
    backends = sorted(ALGORITHMS)
    jobs = [
        (name, algorithm)
        for _ in range(rounds)
        for name in graphs
        for algorithm in backends
    ]

    report: Dict = {
        "graphs": {name: graph.stats() for name, (graph, _keys) in graphs.items()},
        "backends": backends,
        "rounds": rounds,
        "requests": len(jobs),
        "max_inflight": max_inflight,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "ok": True,
    }

    # ---- synchronous baseline: one MatchSession.run per (graph, backend) #
    baselines: Dict[Tuple[str, str], tuple] = {}
    for name, (graph, keys) in graphs.items():
        session = MatchSession(graph).with_keys(keys)
        for algorithm in backends:
            baselines[(name, algorithm)] = _result_key(session.run(algorithm))

    # ---- the live server ------------------------------------------------ #
    service = MatchingService(
        store=store_dir, max_inflight=max_inflight, max_queued=len(jobs) + 8
    )
    for name, (graph, keys) in graphs.items():
        service.register_graph(name, graph, keys, source="bench")
    server = make_http_server(service, host="127.0.0.1", port=0)
    host, port = server.server_address
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()

    depth_samples: List[int] = []
    sampling = threading.Event()

    def sample_queue_depth() -> None:
        while not sampling.wait(0.01):
            depth_samples.append(service.controller.queue_depth)

    latencies: List[float] = []
    latency_lock = threading.Lock()
    divergent: List[str] = []

    def drive(job: Tuple[str, str]) -> None:
        name, algorithm = job
        started = time.perf_counter()
        status, data = _http_json(
            host, port, "POST", "/match",
            {"graph": name, "algorithm": algorithm, "wait": True},
        )
        elapsed = time.perf_counter() - started
        with latency_lock:
            latencies.append(elapsed)
            if status != 200 or data.get("status") != "done":
                divergent.append(f"{name}/{algorithm}: HTTP {status} {data.get('status')}")
                return
            served = _result_key(EMResult.from_dict(data["result"]))
            if served != baselines[(name, algorithm)]:
                divergent.append(f"{name}/{algorithm}: result diverged from sync run")

    sampler = threading.Thread(target=sample_queue_depth, daemon=True)
    sampler.start()
    burst_started = time.perf_counter()
    try:
        with ThreadPoolExecutor(max_workers=min(len(jobs), 32)) as pool:
            list(pool.map(drive, jobs))
        burst_seconds = time.perf_counter() - burst_started
    finally:
        sampling.set()
        sampler.join(timeout=5.0)
        metrics = service.metrics()
        server.shutdown()
        server.server_close()
        service.close()

    report["throughput"] = {
        "burst_seconds": round(burst_seconds, 6),
        "requests_per_second": round(len(jobs) / burst_seconds, 3),
    }
    report["latency_seconds"] = {
        "p50": round(_percentile(latencies, 0.50), 6),
        "p95": round(_percentile(latencies, 0.95), 6),
        "max": round(max(latencies), 6) if latencies else 0.0,
        "mean": round(statistics.fmean(latencies), 6) if latencies else 0.0,
    }
    report["queue_depth"] = {
        "samples": len(depth_samples),
        "max": max(depth_samples) if depth_samples else 0,
        "mean": round(statistics.fmean(depth_samples), 3) if depth_samples else 0.0,
        "max_seen_by_controller": metrics["admission"]["max_queue_depth_seen"],
    }
    report["admission"] = metrics["admission"]

    # ---- the sharing contract ------------------------------------------- #
    store_metrics = metrics["registry"]["store"] or {}
    store_hits = store_metrics.get("hits", 0)
    store_lookups = store_hits + store_metrics.get("misses", 0)
    snapshot_builds = {
        name: entry["cache"]["snapshot_builds"]
        for name, entry in metrics["registry"]["per_graph"].items()
    }
    report["sharing"] = {
        "snapshot_builds_per_graph": snapshot_builds,
        "store_hit_ratio": (
            round(store_hits / store_lookups, 3) if store_lookups else 0.0
        ),
        "store": store_metrics,
    }
    build_once = all(builds == 1 for builds in snapshot_builds.values())
    if not build_once:
        divergent.append(f"snapshot built more than once: {snapshot_builds}")

    # identity with the synchronous runs (and build-once sharing) is the
    # hard gate; throughput/latency live in the artifact trajectory
    report["identity"] = {
        "checked": len(jobs),
        "identical": not divergent,
        "divergent": divergent,
    }
    report["ok"] = not divergent
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--rounds", type=int, default=3,
        help="how many times each (graph, backend) pair is requested",
    )
    parser.add_argument("--max-inflight", type=int, default=4)
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument(
        "--store-dir", default=None,
        help="shared snapshot-store directory (default: a temporary directory)",
    )
    args = parser.parse_args(argv)

    if args.store_dir is not None:
        report = run_bench(args.scale, args.rounds, args.max_inflight, args.store_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-serve-") as store_dir:
            report = run_bench(args.scale, args.rounds, args.max_inflight, store_dir)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwrote {args.out}")
    if not report["ok"]:
        print(
            "FAIL: served results diverged from synchronous runs "
            f"({report['identity']['divergent']})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
