"""Figure 8 (c), (g), (k): running time while varying the dependency-chain
length ``c`` of the key set.

Paper setting: c ∈ [1, 5], p = 4, d = 2.  Reported result: all algorithms
take longer on larger c; the number of MapReduce rounds grows from 2 to 9;
the vertex-centric algorithms are much less sensitive to c because
asynchronous message passing has no per-round barrier to straggle on.
"""

from __future__ import annotations

import pytest

from repro.benchlib import chain_sweep, figure_table, paper_expectation, run_experiment
from repro.matching import em_mr, em_vc_opt

from conftest import dbpedia_factory, google_factory, synthetic_factory

CHAINS = (1, 2, 3, 4, 5)


def _run(experiment_id: str, dataset_name: str, factory, benchmark, note: str):
    spec = chain_sweep(
        experiment_id, dataset_name, factory, chains=CHAINS, p=4, radius=2
    )
    result = run_experiment(spec)
    print()
    print(figure_table(result))

    # the MapReduce round count grows with c (the paper reports 2 → 9)
    rounds = [
        point.results["EMMR"].stats.rounds for point in result.points
    ]
    print(f"EMMR rounds per c: {dict(zip(CHAINS, rounds))}")
    print(paper_expectation(note))

    assert result.consistent_pairs()
    assert rounds[-1] > rounds[0], "MapReduce rounds must grow with the chain length"
    for algorithm in spec.algorithms:
        series = [seconds for _, seconds in result.series(algorithm)]
        assert series[-1] >= series[0] * 0.9, f"{algorithm} should not get faster with larger c"
    # vertex-centric algorithms are less sensitive to c than MapReduce ones
    mr_growth = result.points[-1].seconds("EMMR") / result.points[0].seconds("EMMR")
    vc_growth = result.points[-1].seconds("EMVC") / result.points[0].seconds("EMVC")
    assert vc_growth <= mr_growth * 1.25

    graph, keys = factory(chain_length=CHAINS[-1], radius=2)
    benchmark.pedantic(lambda: em_vc_opt(graph, keys, processors=4), rounds=1, iterations=1)


def test_fig8c_google(benchmark):
    _run(
        "Fig8(c)", "google", google_factory, benchmark,
        "times grow with c; MapReduce rounds grow 2→9; EMVC/EMOptVC least sensitive to c",
    )


def test_fig8g_dbpedia(benchmark):
    _run(
        "Fig8(g)", "dbpedia", dbpedia_factory, benchmark,
        "times grow with c; MapReduce rounds grow 2→9; EMVC/EMOptVC least sensitive to c",
    )


def test_fig8k_synthetic(benchmark):
    _run(
        "Fig8(k)", "synthetic", synthetic_factory, benchmark,
        "times grow with c; MapReduce rounds grow 2→9; EMVC/EMOptVC least sensitive to c",
    )
