#!/usr/bin/env python3
"""Incremental matching benchmark: journal-delta reruns vs full reruns.

Primes one session per backend on the synthetic workload, then applies a
sequence of single-edge deltas; after every delta one session re-runs *fully*
(`rematch`) while its twin re-runs *incrementally* (`rerun`, seeding from the
previous result and re-chasing only journal-affected pairs).  The benchmark
fails (non-zero exit) only on a *correctness* violation: the incremental
``Eq`` must be bit-identical to the full one after every delta.  The measured
full-vs-incremental speedup is recorded in the JSON artifact
(``BENCH_incremental.json``) and is hardware-dependent; enforce a floor
locally with ``--require-speedup``.

Run with:  python benchmarks/bench_incremental.py --out BENCH_incremental.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict

from repro.api.session import MatchSession
from repro.datasets.synthetic import synthetic_dataset

#: The sequential reference, the enumeration baseline and one optimized
#: backend per engine family.  The incremental win concentrates where the
#: solve dominates the re-run (chase, EMVF2MR); the optimized backends'
#: full solves are already cheap, so their delta runs mostly save artifact
#: work and hover near break-even on small graphs.
BENCH_ALGORITHMS = ("chase", "EMVF2MR", "EMOptMR", "EMOptVC")


def single_edge_deltas(graph, count: int):
    """Yield *count* single-edge mutations: one extra value edge per delta.

    Each delta attaches a fresh tag value to one chain entity — a minimal,
    localized change whose affected pair set is small, the scenario the
    incremental path is built for.
    """
    entities = sorted(
        eid for eid in graph.entity_ids() if not eid.startswith("aux_")
    )
    for index in range(count):
        target = entities[index % len(entities)]
        yield lambda g, target=target, index=index: g.add_value(
            target, f"bench_tag_{index}", f"v{index}"
        )


def run_benchmark(processors: int, scale: float, deltas: int) -> Dict:
    report: Dict = {
        "processors": processors,
        "scale": scale,
        "deltas": deltas,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "algorithms": {},
        "ok": True,
    }
    for algorithm in BENCH_ALGORITHMS:
        dataset = synthetic_dataset(
            num_keys=8,
            chain_length=2,
            radius=2,
            entities_per_type=8,
            scale=scale,
            seed=7,
        )
        # two sessions over two identical graphs: one full, one incremental
        full_graph = dataset.graph
        incr_graph = full_graph.copy()
        full_session = MatchSession(full_graph).with_keys(dataset.keys).using(
            algorithm, processors=processors
        )
        incr_session = MatchSession(incr_graph).with_keys(dataset.keys).using(
            algorithm, processors=processors
        )
        full_session.run()
        incr_session.run()

        full_seconds = 0.0
        incr_seconds = 0.0
        identical = True
        rechecked = skipped = 0
        for mutate in single_edge_deltas(full_graph, deltas):
            mutate(full_graph)
            mutate(incr_graph)
            started = time.perf_counter()
            full_result = full_session.rematch()
            full_seconds += time.perf_counter() - started
            started = time.perf_counter()
            incr_result = incr_session.rerun()
            incr_seconds += time.perf_counter() - started
            identical = identical and (
                full_result.eq.pairs() == incr_result.eq.pairs()
            )
            delta = incr_session.last_delta()
            rechecked += delta.pairs_rechecked
            skipped += delta.pairs_skipped
        speedup = full_seconds / incr_seconds if incr_seconds > 0 else 0.0
        info = incr_session.cache_info()
        report["algorithms"][algorithm] = {
            "identified_pairs": incr_result.num_identified,
            "full_wall_seconds": round(full_seconds, 4),
            "incremental_wall_seconds": round(incr_seconds, 4),
            "measured_speedup": round(speedup, 3),
            "pairs_rechecked": rechecked,
            "pairs_skipped": skipped,
            "incremental_runs": info.incremental_runs,
            "candidate_rebases": info.candidate_rebases,
            "product_graph_rebases": info.product_graph_rebases,
            "results_identical": identical,
        }
        report["ok"] = report["ok"] and identical
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--processors", type=int, default=4)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--deltas", type=int, default=5)
    parser.add_argument("--out", default="BENCH_incremental.json")
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless every backend's incremental speedup is >= X",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args.processors, args.scale, args.deltas)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwrote {args.out}")
    if not report["ok"]:
        print(
            "FAIL: incremental results diverge from the full re-run",
            file=sys.stderr,
        )
        return 1
    if args.require_speedup is not None:
        slow = {
            name: stats["measured_speedup"]
            for name, stats in report["algorithms"].items()
            if stats["measured_speedup"] < args.require_speedup
        }
        if slow:
            print(
                f"FAIL: speedup below {args.require_speedup}x: {slow}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
