"""Figure 8 (d), (h), (l): running time while varying the key radius ``d``.

Paper setting: d ∈ [1, 5], p = 4, c = 2.  Reported result: d is a major cost
factor (d-neighbourhoods grow with d); the pairing strategy makes EMOptMR's
neighbourhoods 42–60% smaller and EMOptMR 3.7–4.8× faster than EMMR at d = 3.
"""

from __future__ import annotations

import pytest

from repro.benchlib import figure_table, paper_expectation, radius_sweep, run_experiment
from repro.matching import em_vc_opt

from conftest import dbpedia_factory, google_factory, synthetic_factory

RADII = (1, 2, 3, 4, 5)


def _run(experiment_id: str, dataset_name: str, factory, benchmark, note: str):
    spec = radius_sweep(
        experiment_id, dataset_name, factory, radii=RADII, p=4, chain_length=2
    )
    result = run_experiment(spec)
    print()
    print(figure_table(result))

    # neighbourhood growth with d (drives the cost, Exp-3 discussion)
    neighborhood_sizes = [
        point.results["EMMR"].stats.neighborhood_total for point in result.points
    ]
    reduced_sizes = [
        point.results["EMOptMR"].stats.neighborhood_total for point in result.points
    ]
    print(f"EMMR    d-neighbourhood nodes per d: {dict(zip(RADII, neighborhood_sizes))}")
    print(f"EMOptMR d-neighbourhood nodes per d: {dict(zip(RADII, reduced_sizes))}")
    print(paper_expectation(note))

    assert result.consistent_pairs()
    assert neighborhood_sizes[-1] > neighborhood_sizes[0], "neighbourhoods must grow with d"
    for d_index in range(len(RADII)):
        assert reduced_sizes[d_index] <= neighborhood_sizes[d_index], (
            "pairing must never enlarge the neighbourhoods"
        )
    for algorithm in spec.algorithms:
        series = [seconds for _, seconds in result.series(algorithm)]
        assert series[-1] >= series[0] * 0.9, f"{algorithm} should not get faster with larger d"
    for point in result.points:
        assert point.seconds("EMOptMR") <= point.seconds("EMMR") * 1.05

    graph, keys = factory(chain_length=2, radius=RADII[-1])
    benchmark.pedantic(lambda: em_vc_opt(graph, keys, processors=4), rounds=1, iterations=1)


def test_fig8d_google(benchmark):
    _run(
        "Fig8(d)", "google", google_factory, benchmark,
        "d is a major cost factor; EMOptMR neighbourhoods 60% smaller, 4.8x faster than EMMR at d=3",
    )


def test_fig8h_dbpedia(benchmark):
    _run(
        "Fig8(h)", "dbpedia", dbpedia_factory, benchmark,
        "d is a major cost factor; EMOptMR neighbourhoods 42% smaller, 3.7x faster than EMMR at d=3",
    )


def test_fig8l_synthetic(benchmark):
    _run(
        "Fig8(l)", "synthetic", synthetic_factory, benchmark,
        "d is a major cost factor; EMOptMR neighbourhoods 53% smaller, 4.2x faster than EMMR at d=3",
    )
