"""In-text statistic of Exp-1: the guided check (EvalMR) vs VF2 enumeration.

The paper reports that EMMR is 1.4–1.9× faster than EMVF2MR thanks to guided
expansion and early termination.  This benchmark compares the two both in
simulated cluster seconds and in charged work units, and uses pytest-benchmark
to time the raw per-pair checkers on real wall-clock time.
"""

from __future__ import annotations

import itertools

import pytest

from repro.benchlib import format_table, paper_expectation
from repro.core.equivalence import EquivalenceRelation
from repro.matching import em_mr, em_vf2_mr
from repro.matching.checkers import EnumerationChecker, GuidedChecker

from conftest import FACTORIES, synthetic_factory


def _comparison_rows():
    rows = []
    for name, factory in FACTORIES.items():
        graph, keys = factory(chain_length=2, radius=2)
        guided = em_mr(graph, keys, processors=4)
        baseline = em_vf2_mr(graph, keys, processors=4)
        assert guided.pairs() == baseline.pairs()
        rows.append(
            [
                name,
                f"{guided.simulated_seconds:.2f}",
                f"{baseline.simulated_seconds:.2f}",
                f"{baseline.simulated_seconds / max(1e-9, guided.simulated_seconds):.2f}x",
                guided.stats.work_units,
                baseline.stats.work_units,
            ]
        )
    return rows


def test_guided_eval_beats_vf2_enumeration(benchmark):
    rows = benchmark.pedantic(_comparison_rows, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["dataset", "EMMR (sim s)", "EMVF2MR (sim s)", "EMMR speedup", "EMMR work", "EMVF2MR work"],
            rows,
            title="Guided early-terminating check vs full VF2 enumeration",
        )
    )
    print(paper_expectation("EMMR is 1.4x / 1.9x / 1.4x faster than EMVF2MR on the three datasets"))
    for row in rows:
        assert float(row[3].rstrip("x")) >= 1.0, "the guided check must not lose to enumeration"


def _checker_workload():
    graph, keys = synthetic_factory(chain_length=2, radius=2)
    eq = EquivalenceRelation()
    pairs = []
    for etype in sorted(keys.target_types()):
        entities = graph.entities_of_type(etype)
        pairs.extend(itertools.combinations(entities, 2))
    return graph, keys, eq, pairs[:200]


def test_wallclock_guided_checker(benchmark):
    graph, keys, eq, pairs = _checker_workload()
    checker = GuidedChecker(graph)

    def run():
        for e1, e2 in pairs:
            checker.check(keys.keys_for_type(graph.entity_type(e1)), e1, e2, eq, None, None)

    benchmark(run)


def test_wallclock_vf2_checker(benchmark):
    graph, keys, eq, pairs = _checker_workload()
    checker = EnumerationChecker(graph)

    def run():
        for e1, e2 in pairs:
            checker.check(keys.keys_for_type(graph.entity_type(e1)), e1, e2, eq, None, None)

    benchmark(run)
