#!/usr/bin/env python3
"""Parallel smoke benchmark: real executors vs the serial reference.

Runs one MapReduce backend and one vertex-centric backend on the
scalability-study synthetic workload twice — once on the ``SerialExecutor``
and once on the requested real executor (process pool by default) — verifies
the results are identical, and writes the measured wall-clock numbers to a
JSON artifact (``BENCH_parallel.json``).  CI uploads the artifact on every
run, seeding the performance trajectory of the runtime layer.

The script fails (non-zero exit) only on *correctness* violations: identical
pairs and statistics are a hard requirement, measured speedup is reported but
hardware-dependent (a single-core runner cannot show any).

Run with:  python benchmarks/bench_parallel_smoke.py --executor process --workers 2
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from typing import Dict

from repro.api.session import MatchSession
from repro.datasets.synthetic import synthetic_dataset

#: One backend per engine family, as the acceptance criteria require.
SMOKE_ALGORITHMS = ("EMOptMR", "EMOptVC")


def run_smoke(executor: str, workers: int, processors: int, scale: float) -> Dict:
    dataset = synthetic_dataset(
        num_keys=10, chain_length=2, radius=2, entities_per_type=6, scale=scale, seed=7
    )
    session = MatchSession(dataset.graph).with_keys(dataset.keys)
    report: Dict = {
        "executor": executor,
        "workers": workers,
        "processors": processors,
        "scale": scale,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "algorithms": {},
        "ok": True,
    }
    for algorithm in SMOKE_ALGORITHMS:
        serial = session.run(algorithm, processors=processors, executor="serial", workers=workers)
        parallel = session.run(algorithm, processors=processors, executor=executor, workers=workers)
        identical = (
            serial.pairs() == parallel.pairs()
            and serial.stats.as_dict() == parallel.stats.as_dict()
        )
        speedup = (
            serial.wall_seconds / parallel.wall_seconds if parallel.wall_seconds > 0 else 0.0
        )
        report["algorithms"][algorithm] = {
            "identified_pairs": serial.num_identified,
            "simulated_seconds": round(serial.simulated_seconds, 3),
            "serial_wall_seconds": round(serial.wall_seconds, 4),
            f"{executor}_wall_seconds": round(parallel.wall_seconds, 4),
            "measured_speedup": round(speedup, 3),
            "results_identical": identical,
        }
        report["ok"] = report["ok"] and identical
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--executor", choices=["thread", "process"], default="process")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--processors", type=int, default=4)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--out", default="BENCH_parallel.json")
    args = parser.parse_args(argv)

    report = run_smoke(args.executor, args.workers, args.processors, args.scale)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwrote {args.out}")
    if not report["ok"]:
        print("FAIL: parallel results diverge from the serial reference", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
