"""Figure 8 (b), (f), (j): running time while varying the graph size |G|.

Paper setting: scale factor 0.2–1.0 of each dataset, p = 4, c = 2, d = 2.
Reported result: all algorithms take longer on larger graphs; EMOptVC is the
fastest throughout and EMOptMR beats the other MapReduce variants.
"""

from __future__ import annotations

import pytest

from repro.benchlib import figure_table, paper_expectation, run_experiment, scale_sweep
from repro.matching import em_vc_opt

from conftest import dbpedia_factory, google_factory, synthetic_factory

SCALES = (0.2, 0.4, 0.6, 0.8, 1.0)


def _run(experiment_id: str, dataset_name: str, factory, benchmark, note: str):
    spec = scale_sweep(
        experiment_id, dataset_name, factory, scales=SCALES, p=4, chain_length=2, radius=2
    )
    result = run_experiment(spec)
    print()
    print(figure_table(result))
    print(paper_expectation(note))

    assert result.consistent_pairs()
    for algorithm in spec.algorithms:
        series = [seconds for _, seconds in result.series(algorithm)]
        # fixed engine overheads can make the cheapest algorithms essentially
        # flat at the smallest scales, so allow a small tolerance there
        assert series[-1] >= series[0] * 0.95, f"{algorithm} must take longer on larger graphs"
    # the compute-bound algorithms grow strictly with |G|
    for algorithm in ("EMVF2MR", "EMMR"):
        series = [seconds for _, seconds in result.series(algorithm)]
        assert series[-1] > series[0], f"{algorithm} must grow with the graph size"
    for point in result.points:
        assert point.seconds("EMOptVC") <= point.seconds("EMVC")
        assert point.seconds("EMOptMR") <= point.seconds("EMMR") * 1.05
        assert point.seconds("EMVC") < point.seconds("EMMR")

    graph, keys = factory(scale=SCALES[-1], chain_length=2, radius=2)
    benchmark.pedantic(lambda: em_vc_opt(graph, keys, processors=4), rounds=1, iterations=1)


def test_fig8b_google(benchmark):
    _run(
        "Fig8(b)", "google", google_factory, benchmark,
        "times grow with |G|; EMOptVC fastest, EMOptMR best MapReduce variant",
    )


def test_fig8f_dbpedia(benchmark):
    _run(
        "Fig8(f)", "dbpedia", dbpedia_factory, benchmark,
        "times grow with |G|; EMOptVC fastest, EMOptMR best MapReduce variant",
    )


def test_fig8j_synthetic(benchmark):
    _run(
        "Fig8(j)", "synthetic", synthetic_factory, benchmark,
        "EMOptMR / EMOptVC take 68 / 3.6 seconds at G=(40M,200M) with 4 processors (paper scale)",
    )
