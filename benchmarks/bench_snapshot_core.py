#!/usr/bin/env python3
"""Core storage-layer micro-benchmark: dict path vs compiled snapshot path.

Measures the three costs the ``repro.storage`` layer targets, on a synthetic
benchmark graph dense enough that d-neighbourhoods have real extent:

* **snapshot build** — the one-off cost of compiling ``Graph`` into the
  interned, CSR-backed :class:`~repro.storage.GraphSnapshot`;
* **neighbourhood extraction** — a full
  :class:`~repro.core.neighborhood.NeighborhoodIndex` precompute over every
  entity, dict-of-sets BFS vs the snapshot's integer-space BFS;
* **VF2 throughput** — enumerating all subgraph isomorphisms of a pool of
  small patterns into the graph, the generic dict-path matcher vs the
  compiled integer-space search.

Correctness is a hard requirement: both paths must produce identical
neighbourhood sets and identical VF2 mappings (same order, same search
statistics), or the script exits non-zero.  Timings are written to
``BENCH_core.json``; CI uploads the artifact on every run, seeding the
storage layer's performance trajectory.

Run with:  python benchmarks/bench_snapshot_core.py --out BENCH_core.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List

from repro.core.graph import Graph
from repro.core.neighborhood import NeighborhoodIndex, d_neighborhood_nodes
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.isomorphism.vf2 import VF2Matcher
from repro.storage import GraphSnapshot, SnapshotNeighborhoodIndex

#: The combined speedup the acceptance criteria require of the snapshot path.
REQUIRED_SPEEDUP = 1.5


def _best_of(fn, repeats: int) -> float:
    """The best (minimum) wall time of *repeats* runs of *fn*."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _pattern_pool(graph: Graph, limit: int) -> List[Graph]:
    """Small connected patterns cut out of the benchmark graph itself."""
    patterns: List[Graph] = []
    for entity in graph.entity_ids():
        pattern = graph.induced_subgraph(d_neighborhood_nodes(graph, entity, 1))
        if 2 <= pattern.num_triples <= 6:
            patterns.append(pattern)
        if len(patterns) >= limit:
            break
    return patterns


def run_bench(scale: float, repeats: int, match_limit: int) -> Dict:
    # radius-3 keys over a graph with enough noise edges that neighbourhoods
    # have tens of nodes — the regime the paper's d-neighbourhoods live in
    config = SyntheticConfig(
        num_keys=12,
        chain_length=3,
        radius=3,
        entities_per_type=12,
        noise_edges=150,
        scale=scale,
        seed=7,
    )
    dataset = generate_synthetic(config)
    graph, keys = dataset.graph, dataset.keys
    entities = list(graph.entity_ids())

    report: Dict = {
        "graph": graph.stats(),
        "keys": keys.cardinality,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "required_speedup": REQUIRED_SPEEDUP,
        "ok": True,
    }

    # ---- snapshot build (the one-off compilation cost) ----------------- #
    build_seconds = _best_of(lambda: GraphSnapshot.build(graph), repeats)
    snapshot = GraphSnapshot.build(graph)
    snapshot.adjacency()  # decode once, as a session-cached snapshot would be
    report["snapshot_build_seconds"] = round(build_seconds, 6)

    # ---- neighbourhood extraction: dict BFS vs integer BFS ------------- #
    def extract_dict() -> NeighborhoodIndex:
        index = NeighborhoodIndex(graph, keys)
        index.precompute(entities)
        return index

    def extract_snapshot() -> SnapshotNeighborhoodIndex:
        index = SnapshotNeighborhoodIndex(snapshot, keys)
        index.precompute(entities)
        return index

    dict_index, snap_index = extract_dict(), extract_snapshot()
    neighborhoods_identical = all(
        dict_index.nodes(entity) == snap_index.nodes(entity) for entity in entities
    )
    neigh_old = _best_of(extract_dict, repeats)
    neigh_new = _best_of(extract_snapshot, repeats)
    report["neighborhood"] = {
        "entities": len(entities),
        "total_nodes": dict_index.total_size(),
        "dict_seconds": round(neigh_old, 6),
        "snapshot_seconds": round(neigh_new, 6),
        "speedup": round(neigh_old / neigh_new, 3) if neigh_new > 0 else 0.0,
        "identical": neighborhoods_identical,
    }

    # ---- VF2 throughput: generic matcher vs compiled integer search ---- #
    patterns = _pattern_pool(graph, limit=30)

    def vf2_over(target) -> List[int]:
        return [
            len(VF2Matcher(pattern, target).find_all(limit=match_limit))
            for pattern in patterns
        ]

    vf2_identical = True
    for pattern in patterns:
        old_matcher, new_matcher = VF2Matcher(pattern, graph), VF2Matcher(pattern, snapshot)
        if old_matcher.find_all(limit=match_limit) != new_matcher.find_all(limit=match_limit):
            vf2_identical = False
            break
        if vars(old_matcher.stats) != vars(new_matcher.stats):
            vf2_identical = False
            break
    vf2_old = _best_of(lambda: vf2_over(graph), repeats)
    vf2_new = _best_of(lambda: vf2_over(snapshot), repeats)
    report["vf2"] = {
        "patterns": len(patterns),
        "matches": sum(vf2_over(snapshot)),
        "dict_seconds": round(vf2_old, 6),
        "snapshot_seconds": round(vf2_new, 6),
        "speedup": round(vf2_old / vf2_new, 3) if vf2_new > 0 else 0.0,
        "identical": vf2_identical,
    }

    combined_old = neigh_old + vf2_old
    combined_new = neigh_new + vf2_new
    report["combined_speedup"] = (
        round(combined_old / combined_new, 3) if combined_new > 0 else 0.0
    )
    report["meets_required_speedup"] = report["combined_speedup"] >= REQUIRED_SPEEDUP
    # correctness is the hard gate; timing lives in the artifact trajectory
    # (and can be enforced locally with --require-speedup), so a noisy CI
    # runner cannot fail an otherwise-green commit
    report["ok"] = neighborhoods_identical and vf2_identical
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=2.0)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--match-limit", type=int, default=200)
    parser.add_argument("--out", default="BENCH_core.json")
    parser.add_argument(
        "--require-speedup",
        action="store_true",
        help=f"also fail when the combined speedup is below {REQUIRED_SPEEDUP}x "
        "(off by default so noisy CI runners only gate on correctness)",
    )
    args = parser.parse_args(argv)

    report = run_bench(args.scale, args.repeats, args.match_limit)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwrote {args.out}")
    if not report["ok"]:
        print("FAIL: snapshot path diverged from the dict path", file=sys.stderr)
        return 1
    if args.require_speedup and not report["meets_required_speedup"]:
        print(
            f"FAIL: combined speedup {report['combined_speedup']}x is below the "
            f"required {REQUIRED_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
