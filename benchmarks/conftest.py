"""Shared workload factories for the benchmark suite.

Every benchmark uses the same three workloads as the paper's evaluation —
"Google" (a Google+-like social network), "DBpedia" (a DBpedia-like knowledge
base) and "Synthetic" (the schema-driven generator) — at laptop scale.  The
factories accept the knobs the paper varies (processors ``p`` via the
harness, graph scale, chain length ``c`` and radius ``d``) and return
``(graph, keys)`` pairs.
"""

from __future__ import annotations

from typing import Tuple

import pytest

from repro.core.graph import Graph
from repro.core.key import KeySet
from repro.datasets.knowledge import knowledge_dataset
from repro.datasets.social import social_dataset
from repro.datasets.synthetic import synthetic_dataset

#: Baseline sizes used by the benchmarks (kept small so the whole suite runs
#: in minutes; the paper's absolute scales are out of reach by design).
GOOGLE_SCALE = 0.8
DBPEDIA_SCALE = 0.8
SYNTHETIC_KEYS = 12
SYNTHETIC_ENTITIES = 6


def google_factory(
    scale: float = GOOGLE_SCALE, chain_length: int = 2, radius: int = 2, seed: int = 11
) -> Tuple[Graph, KeySet]:
    """The Google+-like workload (30 keys in the paper, scaled down here)."""
    dataset = social_dataset(
        scale=scale, chain_length=chain_length, radius=radius, seed=seed
    )
    return dataset.graph, dataset.keys


def dbpedia_factory(
    scale: float = DBPEDIA_SCALE, chain_length: int = 2, radius: int = 2, seed: int = 23
) -> Tuple[Graph, KeySet]:
    """The DBpedia-like workload (100 keys in the paper, scaled down here)."""
    dataset = knowledge_dataset(
        scale=scale, chain_length=chain_length, radius=radius, seed=seed
    )
    return dataset.graph, dataset.keys


def synthetic_factory(
    scale: float = 1.0, chain_length: int = 2, radius: int = 2, seed: int = 7
) -> Tuple[Graph, KeySet]:
    """The synthetic workload (500 generated keys in the paper, scaled down)."""
    dataset = synthetic_dataset(
        num_keys=SYNTHETIC_KEYS,
        chain_length=chain_length,
        radius=radius,
        entities_per_type=SYNTHETIC_ENTITIES,
        scale=scale,
        seed=seed,
    )
    return dataset.graph, dataset.keys


FACTORIES = {
    "google": google_factory,
    "dbpedia": dbpedia_factory,
    "synthetic": synthetic_factory,
}


@pytest.fixture(scope="session")
def workload_factories():
    return FACTORIES
