#!/usr/bin/env python3
"""Snapshot-store benchmark: cold-start build vs mmap load, and ship cost.

Measures what the ``repro.storage.store`` persistence layer buys:

* **cold-start cost** — compiling ``Graph`` into a ``GraphSnapshot``
  (``GraphSnapshot.build``) vs loading the stored file through the store
  (fingerprint + validate + ``mmap``), and vs a raw ``read_snapshot`` attach
  (what a pool worker pays to re-attach by path);
* **per-worker ship cost** — the pickled size/time of a freshly built
  snapshot (what the process pool used to push through every worker's pipe)
  vs a store-backed snapshot, which pickles as a path stub and re-attaches
  by ``mmap`` in the worker.

Correctness is a hard requirement: the loaded snapshot must produce
*identical* ``EMResult``\\ s (pairs, statistics, simulated seconds) to the
freshly built one for every registered backend, or the script exits
non-zero.  Timings are written to ``BENCH_store.json``; CI uploads the
artifact on every run.

Run with:  python benchmarks/bench_snapshot_store.py --out BENCH_store.json
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import platform
import sys
import tempfile
import time
from typing import Dict

from repro.api.registry import ALGORITHMS
from repro.api.session import MatchSession
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.mapreduce.haloop_cache import WorkerCache
from repro.storage import GraphSnapshot, SnapshotStore, graph_fingerprint, read_snapshot

#: The load-vs-build speedup a warm store is expected to deliver.  The store
#: load includes fingerprinting the live graph (O(|G|), the price of knowing
#: the file matches); the raw per-worker attach cost is reported separately
#: and is ~5x cheaper than a build.
REQUIRED_SPEEDUP = 1.2


def _best_of(fn, repeats: int) -> float:
    """The best (minimum) wall time of *repeats* runs of *fn*."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _result_key(result) -> tuple:
    """Everything an EMResult pins down besides measured wall clock."""
    return (
        sorted(result.pairs()),
        result.stats.as_dict(),
        round(result.simulated_seconds, 9),
    )


def run_bench(scale: float, repeats: int, store_dir: str) -> Dict:
    config = SyntheticConfig(
        num_keys=12,
        chain_length=3,
        radius=3,
        entities_per_type=12,
        noise_edges=150,
        scale=scale,
        seed=7,
    )
    dataset = generate_synthetic(config)
    graph, keys = dataset.graph, dataset.keys

    report: Dict = {
        "graph": graph.stats(),
        "keys": keys.cardinality,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "required_speedup": REQUIRED_SPEEDUP,
        "ok": True,
    }

    store = SnapshotStore(store_dir)
    built = GraphSnapshot.build(graph)
    path = store.save(built, graph=graph)
    report["file_size_bytes"] = os.path.getsize(path)
    report["fingerprint"] = graph_fingerprint(graph)

    # ---- cold start: build vs store load vs raw attach ----------------- #
    build_seconds = _best_of(lambda: GraphSnapshot.build(graph), repeats)
    load_seconds = _best_of(lambda: store.load(graph), repeats)
    attach_seconds = _best_of(lambda: read_snapshot(path), repeats)
    report["cold_start"] = {
        "build_seconds": round(build_seconds, 6),
        "store_load_seconds": round(load_seconds, 6),
        "attach_seconds": round(attach_seconds, 6),
        "load_vs_build_speedup": (
            round(build_seconds / load_seconds, 3) if load_seconds > 0 else 0.0
        ),
        "attach_vs_build_speedup": (
            round(build_seconds / attach_seconds, 3) if attach_seconds > 0 else 0.0
        ),
    }
    report["meets_required_speedup"] = (
        report["cold_start"]["load_vs_build_speedup"] >= REQUIRED_SPEEDUP
    )

    # ---- per-worker ship cost: pickled arrays vs path stub -------------- #
    fresh = GraphSnapshot.build(graph)  # never stored: pickles as full arrays
    loaded = store.load(graph)          # store-backed: pickles as a path stub
    bytes_pickle_seconds = _best_of(lambda: pickle.dumps(fresh), repeats)
    stub_pickle_seconds = _best_of(lambda: pickle.dumps(loaded), repeats)
    cache_built, cache_stored = WorkerCache(2), WorkerCache(2)
    cache_built.put("snapshot", fresh, records=0)
    cache_stored.put("snapshot", loaded, records=0)
    report["ship_cost"] = {
        "pickled_bytes": len(pickle.dumps(fresh)),
        "path_stub_bytes": len(pickle.dumps(loaded)),
        "pickle_seconds": round(bytes_pickle_seconds, 6),
        "stub_pickle_seconds": round(stub_pickle_seconds, 6),
        "attach_seconds_per_worker": round(attach_seconds, 6),
        # what the MR driver's Haloop worker cache pushes through the pipe
        "worker_cache_bytes_built": cache_built.shipped_bytes(),
        "worker_cache_bytes_store": cache_stored.shipped_bytes(),
    }

    # ---- identity: loaded snapshot == built snapshot, every backend ----- #
    session_built = MatchSession(graph).with_keys(keys)
    session_loaded = MatchSession(graph, snapshot_store=store_dir).with_keys(keys)
    identical = True
    divergent = []
    for name in ALGORITHMS:
        built_result = session_built.run(name, processors=4)
        loaded_result = session_loaded.run(name, processors=4)
        if _result_key(built_result) != _result_key(loaded_result):
            identical = False
            divergent.append(name)
    if session_loaded.cache_info().store_hits < 1:
        identical = False
        divergent.append("<store was never hit>")
    report["identity"] = {
        "backends": list(ALGORITHMS),
        "identical": identical,
        "divergent": divergent,
        "store_hits": session_loaded.cache_info().store_hits,
    }
    # identity is the hard gate; timing lives in the artifact trajectory
    # (enforce locally with --require-speedup) so a noisy CI runner cannot
    # fail an otherwise-green commit
    report["ok"] = identical
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=4.0)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--out", default="BENCH_store.json")
    parser.add_argument(
        "--store-dir",
        default=None,
        help="snapshot store directory (default: a temporary directory)",
    )
    parser.add_argument(
        "--require-speedup",
        action="store_true",
        help=f"also fail when the load-vs-build speedup is below {REQUIRED_SPEEDUP}x "
        "(off by default so noisy CI runners only gate on correctness)",
    )
    args = parser.parse_args(argv)

    if args.store_dir is not None:
        report = run_bench(args.scale, args.repeats, args.store_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-snapstore-") as store_dir:
            report = run_bench(args.scale, args.repeats, store_dir)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwrote {args.out}")
    if not report["ok"]:
        print(
            "FAIL: store-loaded snapshot diverged from the built one "
            f"(backends: {report['identity']['divergent']})",
            file=sys.stderr,
        )
        return 1
    if args.require_speedup and not report["meets_required_speedup"]:
        print(
            f"FAIL: load-vs-build speedup "
            f"{report['cold_start']['load_vs_build_speedup']}x is below the "
            f"required {REQUIRED_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
