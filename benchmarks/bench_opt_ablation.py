"""In-text statistics of Exp-1: effectiveness of the optimizations.

The paper reports that, compared with EMMR, the optimizations of EMOptMR
(a) reduce the candidate set L by 38–52%, (b) make the d-neighbourhoods
1.7–2.5× smaller and (c) remove 15–23% of the redundant isomorphism checks;
and that EMOptVC is ≈ 1.5× faster than EMVC thanks to bounded messages and
prioritized propagation.  This ablation measures the same quantities.
"""

from __future__ import annotations

import pytest

from repro.benchlib import format_table, paper_expectation
from repro.matching import em_mr, em_mr_opt, em_vc, em_vc_opt
from repro.matching.candidates import build_candidates, build_filtered_candidates

from conftest import FACTORIES


def _ablation_rows():
    rows = []
    for name, factory in FACTORIES.items():
        graph, keys = factory(chain_length=2, radius=2)
        unfiltered = build_candidates(graph, keys)
        filtered = build_filtered_candidates(graph, keys, reduce_neighborhoods=True)
        base = em_mr(graph, keys, processors=4)
        optimized = em_mr_opt(graph, keys, processors=4)
        vc = em_vc(graph, keys, processors=4)
        vc_opt = em_vc_opt(graph, keys, processors=4)
        assert base.pairs() == optimized.pairs() == vc.pairs() == vc_opt.pairs()
        l_reduction = 100.0 * filtered.reduction_ratio()
        nbhd_factor = filtered.neighborhood_reduction_factor()
        check_reduction = 100.0 * (1 - optimized.stats.checks / max(1, base.stats.checks))
        rows.append(
            [
                name,
                f"{l_reduction:.0f}%",
                f"{nbhd_factor:.2f}x",
                f"{check_reduction:.0f}%",
                f"{base.simulated_seconds / max(1e-9, optimized.simulated_seconds):.2f}x",
                f"{vc.stats.messages_processed}",
                f"{vc_opt.stats.messages_processed}",
            ]
        )
    return rows


def test_optimization_effectiveness(benchmark):
    rows = benchmark.pedantic(_ablation_rows, rounds=1, iterations=1)
    print()
    print(
        format_table(
            [
                "dataset",
                "L reduced",
                "Gd smaller",
                "checks removed",
                "EMOptMR speedup",
                "EMVC msgs",
                "EMOptVC msgs",
            ],
            rows,
            title="Optimization effectiveness (EMOptMR vs EMMR, EMOptVC vs EMVC)",
        )
    )
    print(
        paper_expectation(
            "L reduced 38-52%, Gd 1.7-2.5x smaller, 15-23% fewer redundant checks, "
            "EMOptMR ≈ 3x faster than EMMR, EMOptVC ≈ 1.5x faster than EMVC"
        )
    )
    for row in rows:
        # the optimizations must never hurt: checks removed ≥ 0, speedup ≥ ~1
        assert float(row[3].rstrip("%")) >= 0.0
        assert float(row[4].rstrip("x")) >= 0.95
