#!/usr/bin/env python3
"""Streaming ingest benchmark: O(delta) artifact refresh vs rebuild-per-delta.

Two measurements, two fatal identity gates:

* **Artifact refresh** — per journalled delta, the patch path
  (``GraphSnapshot.patched`` + the O(1) fingerprint accumulator +
  ``SnapshotStore.patch`` segment rewrite) races the rebuild path
  (``GraphSnapshot.build`` + full :func:`graph_fingerprint` recompute + full
  store save) over a range of graph scales.  **Fatal gate:** the patched
  snapshot must be bit-identical to the rebuilt one — every interning table
  and CSR array — after every delta.  The per-delta refresh speedup at the
  largest scale is the acceptance headline; the benchmark fails below
  ``--require-refresh-speedup`` (default 5x, ``0`` disables).

* **Sustained ingest** — an :class:`~repro.service.ingest.IngestPipeline`
  consumes a mutation stream against a blocked incremental session under a
  latency budget.  **Fatal gate:** the streamed final result must equal a
  one-shot batch run (the sequential chase on an identically mutated twin
  graph).  Mutations/sec and the p50/p95/max batch staleness are recorded as
  the headline metrics in ``BENCH_ingest.json``.

A third measurement covers the durability path added with the write-ahead
op journal:

* **Crash recovery** — the same ingest stream journalled through a
  :class:`~repro.service.wal.WriteAheadLog` under each fsync policy
  (``off`` / ``batch`` / ``always``) to price the durability overhead,
  then a simulated crash (journalled-but-unflushed tail, no clean close)
  replayed onto a fresh base graph to measure replay throughput.
  **Fatal gate:** the recovered result must be bit-identical to a batch
  run over the journalled ops and the fingerprint accumulator must match
  a full recompute.

Run with:  python benchmarks/bench_ingest.py --out BENCH_ingest.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

from repro.api.session import MatchSession
from repro.core.chase import chase
from repro.core.fingerprint import graph_fingerprint
from repro.datasets.synthetic import synthetic_dataset
from repro.service.ingest import IngestPipeline, apply_mutation
from repro.storage.snapshot import GraphSnapshot
from repro.storage.store import SnapshotStore

#: every pickled-core slot of a snapshot; the bit-identity gate compares all
_SNAPSHOT_SLOTS = (
    "version",
    "_node_of",
    "_id_of",
    "_num_entities",
    "_etype_of",
    "_type_ranges",
    "_pred_of",
    "_pred_ids",
    "_fwd_offsets",
    "_fwd_preds",
    "_fwd_objs",
    "_bwd_offsets",
    "_bwd_preds",
    "_bwd_subjs",
    "_und_offsets",
    "_und_targets",
    "_vindex_offsets",
    "_vindex_literals",
    "_vindex_subjects",
    "_num_triples",
)


def snapshots_identical(patched: GraphSnapshot, rebuilt: GraphSnapshot) -> bool:
    return all(
        getattr(patched, slot) == getattr(rebuilt, slot) for slot in _SNAPSHOT_SLOTS
    )


def bench_dataset(scale: float):
    return synthetic_dataset(
        num_keys=8,
        chain_length=2,
        radius=2,
        entities_per_type=8,
        scale=scale,
        seed=7,
    )


def refresh_deltas(graph, count: int) -> List:
    """*count* journalled deltas over a bounded predicate vocabulary.

    Value attachments and edge additions dominate (the steady-state ingest
    shape: a fresh predicate would renumber every predicate id and force a
    near-full array rewrite); one retype and one removal per ten deltas keep
    the order-reshuffling mutations in the identity gate's coverage.
    """
    entities = sorted(graph.entity_ids())
    types = sorted(graph.types())
    deltas = []
    for index in range(count):
        target = entities[index % len(entities)]
        if index % 10 == 7:
            deltas.append(
                lambda g, t=target, i=index: g.retype_entity(
                    t, types[i % len(types)]
                )
            )
        elif index % 10 == 8:
            deltas.append(
                lambda g, t=target: g.remove_triple(
                    sorted(g.out_triples(t), key=repr)[0]
                )
                if g.out_triples(t)
                else None
            )
        else:
            deltas.append(
                lambda g, t=target, i=index: g.add_value(
                    t, f"ingest_tag_{i % 4}", f"v{i}"
                )
            )
    return deltas


def bench_refresh(scale: float, deltas: int, store_root: Path) -> Dict:
    """Patch-path vs rebuild-path per-delta artifact refresh at one scale."""
    dataset = bench_dataset(scale)
    graph = dataset.graph
    patch_store = SnapshotStore(store_root / f"patch_{scale}")
    rebuild_store = SnapshotStore(store_root / f"rebuild_{scale}")
    snapshot = GraphSnapshot.build(graph)
    patch_store.save(snapshot, graph=graph)

    patch_seconds = 0.0
    rebuild_seconds = 0.0
    identical = True
    for mutate in refresh_deltas(graph, deltas):
        base_version = snapshot.version
        mutate(graph)
        touched = graph.touched_since(base_version)

        started = time.perf_counter()
        patched = snapshot.patched(graph, touched)
        fingerprint = graph.content_fingerprint()
        patch_store.patch(
            patched, base=snapshot, fingerprint=fingerprint, prune_base=True
        )
        patch_seconds += time.perf_counter() - started

        started = time.perf_counter()
        rebuilt = GraphSnapshot.build(graph)
        full_fingerprint = graph_fingerprint(graph)
        rebuild_store.save(rebuilt, fingerprint=full_fingerprint)
        rebuild_seconds += time.perf_counter() - started

        identical = identical and snapshots_identical(patched, rebuilt)
        identical = identical and fingerprint == full_fingerprint
        snapshot = patched

    speedup = rebuild_seconds / patch_seconds if patch_seconds > 0 else 0.0
    return {
        "entities": graph.num_entities,
        "triples": graph.num_triples,
        "deltas": deltas,
        "patch_wall_seconds": round(patch_seconds, 5),
        "rebuild_wall_seconds": round(rebuild_seconds, 5),
        "patch_ms_per_delta": round(1000.0 * patch_seconds / deltas, 4),
        "rebuild_ms_per_delta": round(1000.0 * rebuild_seconds / deltas, 4),
        "refresh_speedup": round(speedup, 2),
        "store_segments_reused": patch_store.patched_segments_reused,
        "store_segments_rewritten": patch_store.patched_segments_rewritten,
        "bit_identical": identical,
    }


def ingest_ops(graph, count: int) -> List[Dict]:
    """A mutation stream in the ingest wire vocabulary."""
    entities = sorted(graph.entity_ids())
    types = sorted(graph.types())
    ops: List[Dict] = []
    for index in range(count):
        target = entities[index % len(entities)]
        if index % 7 == 5:
            eid = f"stream_{index}"
            ops.append({"op": "add_entity", "id": eid, "type": types[index % len(types)]})
            ops.append(
                {"op": "add_edge", "subject": eid, "predicate": "stream_ref", "object": target}
            )
        else:
            ops.append(
                {
                    "op": "add_value",
                    "subject": target,
                    "predicate": f"stream_tag_{index % 3}",
                    "value": f"s{index}",
                }
            )
    return ops


def bench_ingest(scale: float, ops_count: int, latency_budget: float) -> Dict:
    """Sustained streaming ingest against a blocked incremental session."""
    dataset = bench_dataset(scale)
    graph, keys = dataset.graph, dataset.keys
    twin = graph.copy()
    session = MatchSession(graph).with_keys(keys).using("EMOptVC", blocking="auto")
    session.run()

    ops = ingest_ops(graph, ops_count)
    pipeline = IngestPipeline(session, latency_budget=latency_budget)
    report = pipeline.run(ops)

    for op in ops:
        apply_mutation(twin, op)
    streamed = pipeline.last_result.eq.pairs()
    batch_full = chase(twin, keys).pairs()

    info = session.cache_info()
    return {
        "entities": graph.num_entities,
        "triples": graph.num_triples,
        "latency_budget_seconds": latency_budget,
        "ops": report.ops_applied,
        "batches": report.batches,
        "delta_modes": report.delta_modes,
        "mutations_per_second": round(report.mutations_per_second, 1),
        "staleness_p50_ms": round(1000.0 * report.staleness_p50, 2),
        "staleness_p95_ms": round(1000.0 * report.staleness_p95, 2),
        "staleness_max_ms": round(1000.0 * report.staleness_max, 2),
        "pairs_rechecked": report.pairs_rechecked,
        "snapshot_patches": info.snapshot_patches,
        "snapshot_builds": info.snapshot_builds,
        "identified_pairs": pipeline.last_result.num_identified,
        "streamed_equals_batch": streamed == batch_full,
    }


def bench_recovery(
    scale: float, ops_count: int, latency_budget: float, wal_root: Path
) -> Dict:
    """WAL durability pricing and crash-replay throughput + identity gate."""
    from repro.core.fingerprint import fingerprint_of
    from repro.service.wal import WriteAheadLog, replay

    policies: Dict[str, Dict] = {}
    for policy in ("off", "batch", "always"):
        dataset = bench_dataset(scale)
        graph, keys = dataset.graph, dataset.keys
        session = MatchSession(graph).with_keys(keys).using("EMOptVC", blocking="auto")
        session.run()
        wal = WriteAheadLog(
            wal_root / f"fsync_{policy}",
            fsync=policy,
            base_fingerprint=fingerprint_of(graph),
        )
        ops = ingest_ops(graph, ops_count)
        started = time.perf_counter()
        report = IngestPipeline(
            session, latency_budget=latency_budget, wal=wal
        ).run(ops)
        elapsed = time.perf_counter() - started
        metrics = wal.metrics()
        wal.close()
        policies[policy] = {
            "wall_seconds": round(elapsed, 5),
            "mutations_per_second": (
                round(report.ops_applied / elapsed, 1) if elapsed > 0 else 0.0
            ),
            "batches": report.batches,
            "fsync_calls": metrics["fsync_calls"],
            "bytes_written": metrics["bytes_written"],
        }
    overhead = (
        policies["always"]["wall_seconds"] / policies["off"]["wall_seconds"]
        if policies["off"]["wall_seconds"] > 0
        else 0.0
    )

    # --- the crash: journalled run, tail applied but never flushed --------- #
    dataset = bench_dataset(scale)
    graph, keys = dataset.graph, dataset.keys
    session = MatchSession(graph).with_keys(keys).using("EMOptVC", blocking="auto")
    session.run()
    crash_root = wal_root / "crash"
    wal = WriteAheadLog(
        crash_root, fsync="batch", base_fingerprint=fingerprint_of(graph)
    )
    ops = ingest_ops(graph, ops_count)
    tail = max(1, ops_count // 10)
    IngestPipeline(session, latency_budget=latency_budget, wal=wal).run(
        ops[: len(ops) - tail]
    )
    for op in ops[len(ops) - tail:]:
        wal.append(op)
        apply_mutation(graph, op)
    # no close(): the process "died" here, the journal keeps the torn window

    recovered = bench_dataset(scale)
    session2 = (
        MatchSession(recovered.graph)
        .with_keys(recovered.keys)
        .using("EMOptVC", blocking="auto")
    )
    session2.run()
    wal2 = WriteAheadLog(crash_root, fsync="batch")
    journalled = wal2.state().ops
    started = time.perf_counter()
    replay_report = replay(wal2, session2)
    replay_elapsed = time.perf_counter() - started
    result = session2.rerun()
    wal2.close()

    twin = bench_dataset(scale).graph
    for op in journalled:
        apply_mutation(twin, op)
    identical = (
        result.eq.pairs() == chase(twin, recovered.keys).pairs()
        and fingerprint_of(session2.graph) == graph_fingerprint(twin)
    )
    return {
        "fsync_policies": policies,
        "fsync_always_overhead_x": round(overhead, 2),
        "crash": {
            "journalled_ops": len(journalled),
            "pending_at_crash": replay_report.pending_replayed,
            "ops_replayed": replay_report.ops_replayed,
            "checkpoints_verified": replay_report.checkpoints_verified,
            "replay_wall_seconds": round(replay_elapsed, 5),
            "replay_ops_per_second": (
                round(replay_report.ops_replayed / replay_elapsed, 1)
                if replay_elapsed > 0
                else 0.0
            ),
            "replay_identical": identical,
        },
    }


def run_benchmark(
    scales: List[float], deltas: int, ops_count: int, latency_budget: float
) -> Dict:
    report: Dict = {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "scales": {},
        "ingest": {},
        "recovery": {},
        "ok": True,
    }
    with tempfile.TemporaryDirectory(prefix="bench_ingest_") as tmp:
        for scale in scales:
            stats = bench_refresh(scale, deltas, Path(tmp))
            report["scales"][str(scale)] = stats
            report["ok"] = report["ok"] and stats["bit_identical"]
        largest = str(max(scales))
        report["largest_scale"] = largest
        report["refresh_speedup_at_largest"] = report["scales"][largest][
            "refresh_speedup"
        ]

        ingest = bench_ingest(max(scales), ops_count, latency_budget)
        report["ingest"] = ingest
        report["ok"] = report["ok"] and ingest["streamed_equals_batch"]

        recovery = bench_recovery(
            max(scales), ops_count, latency_budget, Path(tmp) / "wal"
        )
        report["recovery"] = recovery
        report["ok"] = report["ok"] and recovery["crash"]["replay_identical"]
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scales", type=float, nargs="+", default=[1.0, 2.0, 4.0, 8.0, 16.0]
    )
    parser.add_argument("--deltas", type=int, default=8)
    parser.add_argument("--ops", type=int, default=60)
    parser.add_argument("--latency-budget", type=float, default=0.05)
    parser.add_argument("--out", default="BENCH_ingest.json")
    parser.add_argument(
        "--require-refresh-speedup",
        type=float,
        default=5.0,
        metavar="X",
        help="fail unless the largest-scale refresh speedup is >= X (0 disables)",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(args.scales, args.deltas, args.ops, args.latency_budget)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwrote {args.out}")

    if not report["ok"]:
        print(
            "FAIL: identity gate violated (patched != rebuilt, streamed != "
            "batch, or WAL replay != uninterrupted run)",
            file=sys.stderr,
        )
        return 1
    if args.require_refresh_speedup:
        measured = report["refresh_speedup_at_largest"]
        if measured < args.require_refresh_speedup:
            print(
                f"FAIL: refresh speedup {measured}x at the largest scale is below "
                f"{args.require_refresh_speedup}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
