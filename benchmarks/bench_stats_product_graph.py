"""In-text statistic of Exp-2: the product graph is small, |Gp| ≈ 2.7·|G|.

The paper stresses that the product graph used by the vertex-centric
algorithms stays linear in |G| in practice (2.7× on average), far from the
worst-case |G|².  This benchmark measures the ratio on all three workloads.
"""

from __future__ import annotations

import pytest

from repro.benchlib import format_table, paper_expectation
from repro.matching.candidates import build_filtered_candidates
from repro.matching.product_graph import ProductGraph

from conftest import FACTORIES


def _measure():
    rows = []
    for name, factory in FACTORIES.items():
        graph, keys = factory(chain_length=2, radius=2)
        candidates = build_filtered_candidates(graph, keys, reduce_neighborhoods=False)
        product = ProductGraph(graph, keys, candidates)
        ratio = product.size() / max(1, graph.num_triples)
        rows.append(
            [name, graph.num_triples, product.num_nodes, product.size(), f"{ratio:.2f}"]
        )
    return rows


def test_product_graph_is_linear_in_graph_size(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["dataset", "|G| (triples)", "Gp nodes", "|Gp| (edges)", "|Gp| / |G|"],
            rows,
            title="Product graph size vs graph size",
        )
    )
    print(paper_expectation("|Gp| = 2.7 * |G| on average, much smaller than |G|^2"))
    for _, triples, _, size, ratio in rows:
        assert float(ratio) < 10.0, "the product graph must stay linear in |G|"
        assert size < triples * triples, "|Gp| must be far below |G|^2"
