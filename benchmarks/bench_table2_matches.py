"""Table 2: candidate matches vs confirmed matches.

The paper reports, for each dataset, how many candidate matches the optimized
algorithms consider (EMOptVC considers more than EMOptMR because the product
graph also contains non-candidate pair nodes, while EMOptMR prunes L with the
pairing relation) and how many matches are confirmed.  The absolute counts
depend on the dataset scale; the shape to reproduce is

    candidates(EMOptVC) ≥ candidates(EMOptMR) ≥ confirmed > 0.
"""

from __future__ import annotations

import pytest

from repro.benchlib import candidate_table, paper_expectation
from repro.matching import em_mr_opt, em_vc_opt

from conftest import FACTORIES

PAPER_NUMBERS = {
    "google": {"candidates_vc": 24500, "candidates_mr": 11760, "confirmed": 1620},
    "dbpedia": {"candidates_vc": 22615, "candidates_mr": 15380, "confirmed": 1357},
    "synthetic": {"candidates_vc": 20000, "candidates_mr": 11000, "confirmed": 1000},
}


def _count_rows():
    rows = {}
    for name, factory in FACTORIES.items():
        graph, keys = factory(chain_length=2, radius=2)
        vc = em_vc_opt(graph, keys, processors=4)
        mr = em_mr_opt(graph, keys, processors=4)
        assert vc.pairs() == mr.pairs()
        rows[name] = {
            # EMOptVC explores the product graph: count its pair nodes
            "candidates_vc": vc.stats.product_graph_nodes,
            # EMOptMR processes the pairing-filtered candidate list L
            "candidates_mr": mr.stats.processed_pairs,
            "confirmed": len(vc.pairs()),
        }
    return rows


def test_table2_candidate_vs_confirmed(benchmark):
    rows = benchmark.pedantic(_count_rows, rounds=1, iterations=1)
    print()
    print(candidate_table(rows))
    print(candidate_table(PAPER_NUMBERS, title="Table 2 as reported by the paper (full scale)"))
    print(paper_expectation("candidates(EMOptVC) > candidates(EMOptMR) > confirmed"))
    for name, counts in rows.items():
        assert counts["confirmed"] > 0, f"{name}: no matches confirmed"
        assert counts["candidates_vc"] >= counts["confirmed"]
        assert counts["candidates_mr"] >= counts["confirmed"]
        assert counts["candidates_vc"] >= counts["candidates_mr"]
