"""Figure 8 (a), (e), (i): running time while varying the number of processors.

Paper setting: p ∈ [4, 20], c = 2, d = 2, with 30 / 100 / 500 keys on Google,
DBpedia and Synthetic.  Reported result: all algorithms are parallel
scalable — EMOptVC and EMOptMR are ≈ 4.8× faster at p = 20 than at p = 4 —
and the vertex-centric algorithms beat every MapReduce variant by an order of
magnitude.

Each test prints the reproduced series (simulated cluster seconds) and
asserts the qualitative shape; pytest-benchmark times one representative
matching run (EMOptVC at p = 4) as the wall-clock measurement.
"""

from __future__ import annotations

import pytest

from repro.benchlib import figure_table, paper_expectation, processors_sweep, run_experiment, speedup_summary
from repro.matching import em_vc_opt

from conftest import dbpedia_factory, google_factory, synthetic_factory

PROCESSORS = (4, 8, 12, 16, 20)


def _run(experiment_id: str, dataset_name: str, factory, benchmark, note: str):
    spec = processors_sweep(
        experiment_id, dataset_name, factory, processors=PROCESSORS,
        chain_length=2, radius=2,
    )
    result = run_experiment(spec)
    print()
    print(figure_table(result))
    print(speedup_summary(result))
    print(paper_expectation(note))

    assert result.consistent_pairs(), "all algorithms must identify the same pairs"
    for algorithm in spec.algorithms:
        series = [seconds for _, seconds in result.series(algorithm)]
        assert series[-1] <= series[0], f"{algorithm} must not slow down with more processors"
        assert result.speedup(algorithm) > 1.5, f"{algorithm} must be parallel scalable"
    # the vertex-centric family beats the MapReduce family at every point
    for point in result.points:
        assert point.seconds("EMVC") < point.seconds("EMMR")
        assert point.seconds("EMOptVC") < point.seconds("EMOptMR")
    # the guided check beats the VF2 baseline
    assert result.points[0].seconds("EMMR") <= result.points[0].seconds("EMVF2MR")

    graph, keys = factory(chain_length=2, radius=2)
    benchmark.pedantic(lambda: em_vc_opt(graph, keys, processors=4), rounds=1, iterations=1)
    return result


def test_fig8a_google(benchmark):
    _run(
        "Fig8(a)", "google", google_factory, benchmark,
        "EMOptVC ≈ 4.8x faster from p=4 to p=20; EMVC ≥ 12.1x faster than MapReduce variants",
    )


def test_fig8e_dbpedia(benchmark):
    _run(
        "Fig8(e)", "dbpedia", dbpedia_factory, benchmark,
        "EMOptVC ≈ 4.7x faster from p=4 to p=20; EMVC ≥ 10.9x faster than MapReduce variants",
    )


def test_fig8i_synthetic(benchmark):
    _run(
        "Fig8(i)", "synthetic", synthetic_factory, benchmark,
        "EMOptVC ≈ 5x faster from p=4 to p=20; EMVC ≥ 13.5x faster than MapReduce variants",
    )
