#!/usr/bin/env python3
"""Blocking benchmark: signature-join candidate generation vs the quadratic scan.

Builds flat-keyed and recursive-keyed synthetic graphs of growing sizes and
measures, per size, the candidate **count** and the candidate-build **wall
clock** of the quadratic enumeration against the blocked one.  The quadratic
side is only *executed* while its pair count stays under ``--pair-limit``
(materializing ``C(50k, 2)`` tuples is not a benchmark, it is an OOM); past
the limit its pair count is still exact (it is a closed form recorded in
``BlockingStats.quadratic_pairs``) and its wall clock is extrapolated from
the largest measured size's per-pair cost, flagged ``quadratic_measured:
false`` in the artifact.

The benchmark fails (non-zero exit) on a *correctness* violation: at every
measured size the blocked pair list must be a subset of the quadratic one
and the chase fixpoint must be bit-identical with blocking off and on — the
fatal identity gate.  It also fails when the largest size prunes fewer than
``--require-pair-ratio`` (default 10x) of the quadratic pairs, which is a
deterministic property of the workload, not of the hardware.  Wall-clock
floors stay hardware-dependent: enforce locally with ``--require-wall-ratio``.

Run with:  python benchmarks/bench_blocking.py --out BENCH_blocking.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from typing import Dict, List

from repro.core.chase import candidate_pairs, chase
from repro.core.graph import Graph
from repro.core.key import Key, KeySet
from repro.core.pattern import (
    GraphPattern,
    PatternTriple,
    designated,
    entity_var,
    value_var,
)
from repro.matching.blocking import blocked_candidate_pairs
from repro.storage import GraphSnapshot


def blocking_dataset(size: int, seed: int = 7):
    """``size`` persons under a flat key + ``size // 10`` books under a
    recursive key, with literal pools tuned for blocks of ~2-8 entities."""
    rng = random.Random(seed)
    graph = Graph()
    name_pool = max(1, size // 4)
    city_pool = max(1, size // 32)
    for i in range(size):
        graph.add_entity(f"p{i}", "person")
        graph.add_value(f"p{i}", "name", f"name_{rng.randrange(name_pool)}")
        graph.add_value(f"p{i}", "city", f"city_{rng.randrange(city_pool)}")
    books = max(4, size // 10)
    author_pool = max(1, books // 4)
    for i in range(books):
        graph.add_entity(f"b{i}", "book")
        graph.add_entity(f"a{i}", "author")
        graph.add_edge(f"b{i}", "written_by", f"a{i}")
        graph.add_value(f"a{i}", "name", f"auth_{rng.randrange(author_pool)}")

    x = designated("x", "person")
    v1, v2 = value_var("v1"), value_var("v2")
    person_key = Key(
        GraphPattern(
            [PatternTriple(x, "name", v1), PatternTriple(x, "city", v2)], name="QP"
        ),
        name="kperson",
    )
    b = designated("b", "book")
    a = entity_var("a", "author")
    v3 = value_var("v3")
    book_key = Key(
        GraphPattern(
            [PatternTriple(b, "written_by", a), PatternTriple(a, "name", v3)],
            name="QB",
        ),
        name="kbook",
    )
    return graph, KeySet([person_key, book_key])


def bench_size(size: int, pair_limit: int, chase_limit: int) -> Dict:
    graph, keys = blocking_dataset(size)
    snapshot = GraphSnapshot.build(graph)

    started = time.perf_counter()
    blocked, stats, _ = blocked_candidate_pairs(
        graph, keys, mode="auto", snapshot=snapshot
    )
    blocked_seconds = time.perf_counter() - started

    entry: Dict = {
        "entities_per_flat_type": size,
        "quadratic_pairs": stats.quadratic_pairs,
        "blocked_pairs": stats.enumerated_pairs,
        "pair_ratio": round(stats.quadratic_pairs / max(1, stats.enumerated_pairs), 2),
        "blocks_touched": stats.blocks_touched,
        "blocked_build_seconds": round(blocked_seconds, 4),
        "index_seconds": round(stats.index_seconds, 4),
        "collision_seconds": round(stats.collision_seconds, 4),
        "identity_checked": False,
        "ok": True,
    }

    quadratic_measured = stats.quadratic_pairs <= pair_limit
    entry["quadratic_measured"] = quadratic_measured
    if quadratic_measured:
        started = time.perf_counter()
        quadratic = candidate_pairs(snapshot, keys)
        quadratic_seconds = time.perf_counter() - started
        entry["quadratic_build_seconds"] = round(quadratic_seconds, 4)
        entry["ok"] = entry["ok"] and set(blocked) <= set(quadratic)
        entry["ok"] = entry["ok"] and len(quadratic) == stats.quadratic_pairs
        if size <= chase_limit:
            reference = chase(graph, keys, snapshot=snapshot)
            under_blocking = chase(graph, keys, snapshot=snapshot, blocking="auto")
            entry["identity_checked"] = True
            entry["identified_pairs"] = len(reference.pairs())
            entry["ok"] = entry["ok"] and (
                under_blocking.pairs() == reference.pairs()
            )
    return entry


def run_benchmark(sizes: List[int], pair_limit: int, chase_limit: int) -> Dict:
    report: Dict = {
        "sizes": sizes,
        "pair_limit": pair_limit,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "series": [],
        "ok": True,
    }
    per_pair_cost = None  # seconds per quadratic pair at the largest measured size
    for size in sizes:
        entry = bench_size(size, pair_limit, chase_limit)
        if entry["quadratic_measured"] and entry["quadratic_pairs"] > 0:
            per_pair_cost = entry["quadratic_build_seconds"] / entry["quadratic_pairs"]
        elif per_pair_cost is not None:
            entry["quadratic_build_seconds"] = round(
                per_pair_cost * entry["quadratic_pairs"], 4
            )
        if "quadratic_build_seconds" in entry:
            entry["wall_clock_ratio"] = round(
                entry["quadratic_build_seconds"]
                / max(1e-9, entry["blocked_build_seconds"]),
                2,
            )
        report["series"].append(entry)
        report["ok"] = report["ok"] and entry["ok"]
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[2000, 10000, 50000]
    )
    parser.add_argument(
        "--pair-limit",
        type=int,
        default=2_500_000,
        help="run the real quadratic enumeration only below this pair count",
    )
    parser.add_argument(
        "--chase-limit",
        type=int,
        default=2000,
        help="run the full chase identity gate up to this entity count",
    )
    parser.add_argument("--out", default="BENCH_blocking.json")
    parser.add_argument(
        "--require-pair-ratio",
        type=float,
        default=10.0,
        metavar="X",
        help="fail unless the largest size enumerates >= X times fewer pairs",
    )
    parser.add_argument(
        "--require-wall-ratio",
        type=float,
        default=None,
        metavar="X",
        help="fail unless the largest size builds candidates >= X times faster",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(sorted(args.sizes), args.pair_limit, args.chase_limit)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwrote {args.out}")
    if not report["ok"]:
        print(
            "FAIL: blocked candidates diverge from the quadratic enumeration",
            file=sys.stderr,
        )
        return 1
    largest = report["series"][-1]
    if (
        args.require_pair_ratio is not None
        and largest["pair_ratio"] < args.require_pair_ratio
    ):
        print(
            f"FAIL: pair ratio {largest['pair_ratio']}x below "
            f"{args.require_pair_ratio}x at size {largest['entities_per_flat_type']}",
            file=sys.stderr,
        )
        return 1
    if (
        args.require_wall_ratio is not None
        and largest.get("wall_clock_ratio", 0.0) < args.require_wall_ratio
    ):
        print(
            f"FAIL: wall-clock ratio {largest.get('wall_clock_ratio')}x below "
            f"{args.require_wall_ratio}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
