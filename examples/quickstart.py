#!/usr/bin/env python3
"""Quickstart: the paper's music example end to end, through ``MatchSession``.

Builds the knowledge-graph fragment G1 of Fig. 2 (albums and artists with a
duplicate album and a duplicate artist), defines the keys Q1–Q3 of Fig. 1
both programmatically and through the textual DSL, runs entity matching with
every registered algorithm through one shared session (so the candidate set,
neighbourhood index and product graph are built once, not once per
algorithm), demonstrates the on-disk snapshot store (warm restarts mmap-load
the compiled snapshot instead of rebuilding it), and explains *why* each
pair was identified using the proof graph (provenance) API.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile

from repro import (
    ALGORITHMS,
    MatchSession,
    chase,
    explain,
    parse_keys,
    proof_from_chase,
    verify_proof,
)
from repro.datasets.music import music_graph, music_keys


def main() -> None:
    graph = music_graph()
    keys = music_keys()
    print("Graph G1:", graph.stats())
    print("Keys   Σ1:", keys.stats())
    print()

    # The same keys can be written in the textual DSL — handy for config files.
    dsl_keys = parse_keys(
        """
        key Q1 for album:            # an album is identified by name + artist
          x -[name_of]-> name*
          x -[recorded_by]-> artist1:artist

        key Q2 for album:            # ... or by name + release year
          x -[name_of]-> name*
          x -[release_year]-> year*

        key Q3 for artist:           # an artist is identified by name + an album
          x -[name_of]-> name*
          album1:album -[recorded_by]-> x
        """
    )
    assert dsl_keys.cardinality == keys.cardinality

    # One session, every backend: the expensive artifacts are shared.
    session = MatchSession(graph).with_keys(keys)
    print("Entity matching with every registered algorithm (one session):")
    for algorithm in ALGORITHMS:
        result = session.run(algorithm, processors=4)
        pairs = ", ".join(f"{a}≡{b}" for a, b in sorted(result.pairs()))
        print(
            f"  {algorithm:9s} identified [{pairs}] "
            f"(simulated {result.simulated_seconds:.2f}s on 4 workers)"
        )
    info = session.cache_info()
    print(
        f"  (neighbourhood index built {info.neighborhood_index_builds}×, "
        f"product graph built {info.product_graph_builds}× "
        f"across {len(session.history)} runs)"
    )
    print()

    # Backend knobs flow through the same entry point — e.g. EMOptVC's
    # fan-out budget, unreachable before the registry redesign:
    tight = session.using("EMOptVC", processors=4, fanout=1).run()
    print(f"EMOptVC with fanout=1: {tight.stats.messages_sent} messages sent")
    print()

    # Real parallelism: executor="process" runs the task batches on a process
    # pool of `workers` real workers (the CLI equivalent is
    # `repro-keys match ... --executor process --workers 2`).  `processors`
    # stays the paper's *simulated* cluster size; results are bit-identical
    # to the serial run, only the measured wall clock changes.
    pooled = session.run("EMOptMR", processors=4, executor="process", workers=2)
    print(
        f"EMOptMR on a 2-worker process pool: identified {pooled.num_identified} "
        f"pairs in {pooled.wall_seconds:.3f}s wall "
        f"({pooled.simulated_seconds:.2f}s simulated on 4 workers)"
    )
    print()

    # Persistence: with a snapshot store the compiled GraphSnapshot lives in
    # a versioned on-disk file keyed by the graph's content fingerprint.  A
    # restarted process mmap-loads it (zero rebuild), and process-pool
    # workers attach by path — one physical copy per machine.  The CLI
    # equivalents are `repro-keys match ... --snapshot-store DIR` and
    # `repro-keys snapshot save|info|verify`.
    with tempfile.TemporaryDirectory() as store_dir:
        cold = MatchSession(graph, snapshot_store=store_dir).with_keys(keys)
        cold.run("EMOptVC")      # builds the snapshot, writes it to the store
        warm = MatchSession(graph, snapshot_store=store_dir).with_keys(keys)
        warm.run("EMOptVC")      # "restart": loads the stored file instead
        print(
            f"snapshot store: cold start built {cold.cache_info().snapshot_builds} "
            f"snapshot(s) (store misses: {cold.cache_info().store_misses}); "
            f"warm start built {warm.cache_info().snapshot_builds} "
            f"(store hits: {warm.cache_info().store_hits})"
        )
    print()

    # Incremental re-matching: after a mutation, `rerun()` seeds from the
    # previous result and re-chases only the candidate pairs the mutation
    # journal says could have changed — bit-identical to a full re-run
    # (the CLI equivalent is `repro-keys match ... --incremental --profile`).
    session.using("EMOptVC", processors=4)
    session.run()
    graph.add_value("alb3", "release_year", "1996")   # a small journal delta
    updated = session.rerun()
    delta = session.last_delta()
    print(
        f"incremental rerun after one mutation: {delta.mode} "
        f"(re-checked {delta.pairs_rechecked} of "
        f"{delta.pairs_rechecked + delta.pairs_skipped} candidate pairs, "
        f"seeded {delta.seed_merges} surviving merge(s)); "
        f"identified {updated.num_identified} pairs"
    )
    graph.remove_value("alb3", "release_year", "1996")  # undo (journalled too)
    session.rerun()
    print()

    # Provenance: why were these entities identified?
    outcome = chase(graph, keys)
    proof = proof_from_chase(outcome)
    assert verify_proof(graph, keys, proof)
    print("Why is art1 the same artist as art2?")
    for step in explain(graph, keys, outcome, "art1", "art2"):
        needs = f" (needs {', '.join(map(str, step.prerequisites))})" if step.prerequisites else ""
        print(f"  {step.pair} identified by key {step.key_name}{needs}")


if __name__ == "__main__":
    main()
