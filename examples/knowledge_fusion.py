#!/usr/bin/env python3
"""Knowledge fusion: deduplicating a DBpedia-like knowledge base.

Two scenarios from the paper's motivation (knowledge fusion / knowledge-base
expansion):

1. a small hand-built fusion case exercising the three keys of Fig. 7
   (books, companies and artists contributed twice by different sources);
2. a generated DBpedia-like workload with planted duplicates, deduplicated
   with the recursive keys generated for it, including a dependency chain
   (book → artist → location) that forces the chase to identify locations
   before artists before books.

Run with:  python examples/knowledge_fusion.py
"""

from __future__ import annotations

from repro import MatchSession
from repro.datasets.knowledge import fusion_example_graph, knowledge_dataset


def run_fig7_scenario() -> None:
    print("=" * 70)
    print("Scenario 1: the Fig. 7 keys on a hand-built two-source fusion case")
    graph, keys, expected = fusion_example_graph()
    print(f"  graph: {graph.stats()}")
    for key in keys:
        flavour = "recursive" if key.is_recursive else "value-based"
        print(f"  key {key.name} ({flavour}, for {key.target_type})")
    result = MatchSession(graph).with_keys(keys).using("EMOptVC").run()
    print("  fused entity pairs:")
    for e1, e2 in sorted(result.pairs()):
        print(f"    {e1}  ≡  {e2}")
    assert result.pairs() == set(expected), "fusion must find exactly the cross-source duplicates"


def run_generated_scenario() -> None:
    print("=" * 70)
    print("Scenario 2: a generated DBpedia-like knowledge base with planted duplicates")
    dataset = knowledge_dataset(scale=1.0, chain_length=3, radius=2, seed=23)
    print(f"  graph: {dataset.graph.stats()}")
    print(f"  keys : {dataset.keys.stats()}")
    session = MatchSession(dataset.graph).with_keys(dataset.keys)
    result = session.using("EMOptMR", processors=8).run()
    found = result.pairs()
    print(f"  planted duplicates : {len(dataset.planted_pairs)}")
    print(f"  identified pairs   : {len(found)}")
    print(f"  simulated time     : {result.simulated_seconds:.2f}s on 8 workers, "
          f"{result.stats.rounds} MapReduce rounds")
    precision = len(found & dataset.planted_pairs) / max(1, len(found))
    recall = len(found & dataset.planted_pairs) / max(1, len(dataset.planted_pairs))
    print(f"  precision={precision:.2f} recall={recall:.2f}")
    assert found == dataset.planted_pairs


if __name__ == "__main__":
    run_fig7_scenario()
    run_generated_scenario()
