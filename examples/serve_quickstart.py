#!/usr/bin/env python3
"""Quickstart for the matching service: a live ``repro serve`` end to end.

Boots the long-lived HTTP front end (the same server ``repro serve`` runs)
on an ephemeral port, then walks the whole wire protocol as a client would:

1. register two named graphs — the paper's music example and a small
   synthetic workload — multiplexing one shared snapshot store;
2. submit a synchronous match (``wait=true``) and an asynchronous one,
   polling its status and streaming its progress events by cursor;
3. fan eight concurrent requests across both graphs and check every served
   result is bit-identical to a local synchronous ``MatchSession.run``;
4. read ``/metrics`` and show the sharing contract: each graph's snapshot
   was built exactly once, no matter how many requests raced.

Run with:  python examples/serve_quickstart.py
"""

from __future__ import annotations

import http.client
import json
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro import MatchSession
from repro.datasets.music import music_dataset
from repro.datasets.synthetic import synthetic_dataset
from repro.matching.result import EMResult
from repro.service import MatchingService, make_http_server


def call(host, port, method, path, body=None):
    """One JSON-over-HTTP exchange (what any client library boils down to)."""
    connection = http.client.HTTPConnection(host, port, timeout=120.0)
    try:
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as store_dir:
        # --- boot the service: bounded queue, shared snapshot store ------ #
        service = MatchingService(store=store_dir, max_inflight=4, max_queued=16)
        server = make_http_server(service, host="127.0.0.1", port=0)
        host, port = server.server_address
        threading.Thread(target=server.serve_forever, daemon=True).start()
        print(f"serving on http://{host}:{port} (store: {store_dir})")

        # --- register two named graphs ----------------------------------- #
        status, body = call(host, port, "POST", "/graphs",
                            {"name": "music", "dataset": "music", "warm": True})
        print(f"POST /graphs music      -> {status} "
              f"({body['registered']['entities']} entities)")
        status, body = call(
            host, port, "POST", "/graphs",
            {"name": "synth", "dataset": "synthetic",
             "dataset_options": {"scale": 0.5, "seed": 7}},
        )
        print(f"POST /graphs synth      -> {status} "
              f"({body['registered']['entities']} entities)")

        # --- a synchronous match (wait=true) ------------------------------ #
        status, body = call(host, port, "POST", "/match",
                            {"graph": "music", "algorithm": "EMOptVC", "wait": True})
        result = EMResult.from_dict(body["result"])
        print(f"POST /match (sync)      -> {status} {body['status']}: "
              f"{result.num_identified} pairs identified")

        # --- an asynchronous match: poll, stream events, fetch result ---- #
        status, body = call(host, port, "POST", "/match",
                            {"graph": "synth", "algorithm": "EMMR"})
        request_id = body["id"]
        print(f"POST /match (async)     -> {status} {body['status']} ({request_id})")
        while body["status"] not in ("done", "failed"):
            time.sleep(0.02)
            _, body = call(host, port, "GET", f"/requests/{request_id}")
        _, events = call(host, port, "GET", f"/requests/{request_id}/events")
        stages = [e["stage"] for e in events["events"]]
        print(f"GET  .../events         -> {len(stages)} events, "
              f"final stage {stages[-1]!r}, next_cursor={events['next_cursor']}")
        _, body = call(host, port, "GET", f"/requests/{request_id}/result")
        print(f"GET  .../result         -> "
              f"{body['result']['identified_pairs']} pairs, queue wait "
              f"{body['provenance']['queue_wait_seconds']:.4f}s")

        # --- eight concurrent requests across both graphs ---------------- #
        music_graph, music_keys = music_dataset()
        synth = synthetic_dataset(scale=0.5, seed=7)
        local = {
            "music": MatchSession(music_graph).with_keys(music_keys),
            "synth": MatchSession(synth.graph).with_keys(synth.keys),
        }
        jobs = [(name, algorithm)
                for name in ("music", "synth")
                for algorithm in ("chase", "EMMR", "EMVC", "EMOptVC")]

        def drive(job):
            name, algorithm = job
            _, body = call(host, port, "POST", "/match",
                           {"graph": name, "algorithm": algorithm, "wait": True})
            return job, EMResult.from_dict(body["result"])

        with ThreadPoolExecutor(max_workers=len(jobs)) as pool:
            outcomes = list(pool.map(drive, jobs))
        for (name, algorithm), served in outcomes:
            assert served.pairs() == local[name].run(algorithm).pairs(), (name, algorithm)
        print(f"{len(jobs)} concurrent requests -> every result identical "
              f"to a local MatchSession.run")

        # --- the sharing contract, observable over the wire --------------- #
        _, metrics = call(host, port, "GET", "/metrics")
        for name, entry in sorted(metrics["registry"]["per_graph"].items()):
            cache = entry["cache"]
            print(f"/metrics {name:<6} runs={entry['runs']} "
                  f"snapshot_builds={cache['snapshot_builds']} "
                  f"index_builds={cache['neighborhood_index_builds']}")
            assert cache["snapshot_builds"] == 1  # built once, shared by all
        admission = metrics["admission"]
        print(f"/metrics admission      accepted={admission['accepted']} "
              f"rejected={admission['rejected']} "
              f"max_queue_depth={admission['max_queue_depth_seen']}")

        server.shutdown()
        server.server_close()
        service.close()
        print("done.")


if __name__ == "__main__":
    main()
