#!/usr/bin/env python3
"""Social-network reconciliation: linking duplicate user accounts.

The paper motivates keys for graphs with social-network reconciliation
(matching user accounts across networks).  This example generates a
Google+-like social-attribute network with duplicate accounts planted at
every level (users, universities, cities), then reconciles it twice:

* with a hand-written, human-readable key set (users identified by profile
  data or by their — recursively identified — university), and
* with the generated key set used by the benchmark workloads, comparing the
  MapReduce and vertex-centric algorithm families on the same input.

Run with:  python examples/social_reconciliation.py
"""

from __future__ import annotations

from repro import MatchSession
from repro.datasets.social import reconciliation_keys, social_dataset


def reconcile_with_handwritten_keys() -> None:
    print("=" * 70)
    print("Hand-written reconciliation keys (name+postal code, name+university, ...)")
    dataset = social_dataset(scale=1.0, chain_length=3, radius=1, seed=11)
    keys = reconciliation_keys()
    session = MatchSession(dataset.graph).with_keys(keys)
    result = session.using("EMOptVC", processors=4).run()
    users = [
        pair for pair in sorted(result.pairs())
        if dataset.graph.entity_type(pair[0]) == "user"
    ]
    print(f"  graph: {dataset.graph.stats()}")
    print(f"  reconciled user-account pairs ({len(users)}):")
    for e1, e2 in users[:10]:
        name = next(
            t.obj.value for t in dataset.graph.out_triples(e1)
            if t.predicate == "name_of" and t.object_is_value()
        )
        print(f"    {e1}  ≡  {e2}   ({name})")
    planted_users = {
        pair for pair in dataset.planted_pairs
        if dataset.graph.entity_type(pair[0]) == "user"
    }
    assert planted_users <= result.pairs(), "every planted duplicate account must be found"


def compare_algorithm_families() -> None:
    print("=" * 70)
    print("MapReduce vs vertex-centric on the generated workload (c=2, d=2)")
    dataset = social_dataset(scale=1.0, chain_length=2, radius=2, seed=11)
    # one session for all five backends: the candidate set, neighbourhood
    # index and product graph are computed once and shared
    session = MatchSession(dataset.graph).with_keys(dataset.keys)
    for algorithm in ("EMVF2MR", "EMMR", "EMOptMR", "EMVC", "EMOptVC"):
        result = session.run(algorithm, processors=8)
        assert result.pairs() == dataset.planted_pairs
        extra = (
            f"rounds={result.stats.rounds}"
            if algorithm.endswith("MR")
            else f"messages={result.stats.messages_sent}"
        )
        print(
            f"  {algorithm:9s} simulated {result.simulated_seconds:7.2f}s on 8 workers "
            f"({extra}, checks={result.stats.checks})"
        )
    info = session.cache_info()
    print(f"  (shared artifacts: neighbourhood index ×{info.neighborhood_index_builds}, "
          f"product graph ×{info.product_graph_builds})")


if __name__ == "__main__":
    reconcile_with_handwritten_keys()
    compare_algorithm_families()
