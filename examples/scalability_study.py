#!/usr/bin/env python3
"""Scalability study: a miniature version of the paper's evaluation.

Runs three of the paper's sweeps on the synthetic workload — varying the
number of processors (Fig. 8i), the dependency-chain length c (Fig. 8k) and
the key radius d (Fig. 8l) — and prints the same style of tables the
benchmark suite produces, plus the circuit-based "hard instance" showing why
long dependency chains hurt the round-based MapReduce algorithms more than
the asynchronous vertex-centric ones.

Run with:  python examples/scalability_study.py
"""

from __future__ import annotations

from repro.benchlib import (
    chain_sweep,
    figure_table,
    processors_sweep,
    radius_sweep,
    run_experiment,
    speedup_summary,
)
from repro import MatchSession
from repro.datasets.circuits import deep_and_chain, encode_circuit
from repro.datasets.synthetic import synthetic_dataset


def synthetic_factory(scale: float = 1.0, chain_length: int = 2, radius: int = 2, seed: int = 7):
    dataset = synthetic_dataset(
        num_keys=10,
        chain_length=chain_length,
        radius=radius,
        entities_per_type=6,
        scale=scale,
        seed=seed,
    )
    return dataset.graph, dataset.keys


def run_sweeps() -> None:
    sweeps = [
        processors_sweep("mini Fig8(i)", "synthetic", synthetic_factory, processors=(4, 8, 16)),
        chain_sweep("mini Fig8(k)", "synthetic", synthetic_factory, chains=(1, 2, 3), p=4),
        radius_sweep("mini Fig8(l)", "synthetic", synthetic_factory, radii=(1, 2, 3), p=4),
    ]
    for spec in sweeps:
        result = run_experiment(spec)
        print(figure_table(result))
        print(speedup_summary(result))
        print()


def run_real_parallelism() -> None:
    """Measured wall clock on real executors, next to the simulated seconds.

    The simulated sweeps above move only the cost model; this section runs
    one MapReduce and one vertex-centric backend on actual executor pools
    (``workers`` real processes) and reports the measured speedup over the
    serial executor.  Results are bit-identical across executors by
    construction; the speedup you see depends on the machine's core count.
    """
    print("=" * 70)
    print("Real executors (process pool, workers=4) vs SerialExecutor")
    graph, keys = synthetic_factory(scale=1.0)
    session = MatchSession(graph).with_keys(keys)
    print(f"{'algorithm':>9} | {'serial wall':>11} | {'process wall':>12} | {'speedup':>7}")
    for algorithm in ("EMOptMR", "EMOptVC"):
        serial = session.run(algorithm, processors=4, executor="serial", workers=4)
        pooled = session.run(algorithm, processors=4, executor="process", workers=4)
        assert pooled.pairs() == serial.pairs()
        speedup = serial.wall_seconds / pooled.wall_seconds if pooled.wall_seconds else 0.0
        print(
            f"{algorithm:>9} | {serial.wall_seconds:>10.3f}s | "
            f"{pooled.wall_seconds:>11.3f}s | {speedup:>6.2f}x"
        )


def run_dependency_chain_stress() -> None:
    print("=" * 70)
    print("Long dependency chains (Theorem 4 intuition): AND-chain circuits")
    print(f"{'depth':>6} | {'EMMR rounds':>11} | {'EMMR sim s':>10} | {'EMVC sim s':>10}")
    for depth in (2, 4, 8):
        graph, keys = encode_circuit(deep_and_chain(depth))
        session = MatchSession(graph).with_keys(keys)
        mr = session.run("EMMR", processors=4)
        vc = session.run("EMVC", processors=4)
        assert mr.pairs() == vc.pairs()
        print(
            f"{depth:>6} | {mr.stats.rounds:>11} | {mr.simulated_seconds:>10.2f} | "
            f"{vc.simulated_seconds:>10.2f}"
        )


if __name__ == "__main__":
    run_sweeps()
    run_real_parallelism()
    run_dependency_chain_stress()
