"""Setup shim for environments where PEP 660 editable installs are unavailable
(offline machines without the ``wheel`` package).  All project metadata lives
in ``pyproject.toml``; this file only enables legacy ``pip install -e .``.
"""

from setuptools import setup

setup()
